"""Unit tests for the window-propagation kernel (repro.core.windows).

The kernel's contract is *soundness*: a closure-derived window may never
exclude a timestamp that participates in some satisfying assignment.
These tests pin the plan construction (closure vs direct), the interval
intersection edge cases (empty bounds, one-sided bounds, ``k = 0``,
collapse after STN closure), the expanded/skipped counter arithmetic,
and the preservation properties of the two slicing helpers against the
exhaustive checkers in :mod:`repro.core.timestamps`.
"""

import math
import random

import pytest

from repro.core import (
    NO_WINDOW,
    SearchStats,
    build_edge_window_plan,
    constraint_slices,
    count_timestamp_assignments,
    feasible_window,
    propagate_run_windows,
    window_slice,
    windowed_times,
    windows_compatible,
)
from repro.graphs import TemporalConstraints

#: A 3-edge chain: t0 <= t1 <= t0+4 and t1 <= t2 <= t1+6.
CHAIN = TemporalConstraints([(0, 1, 4), (1, 2, 6)], num_edges=3)


class TestBuildPlan:
    def test_direct_plan_only_covers_raw_constraints(self):
        plan = build_edge_window_plan((0, 1, 2), CHAIN, closure=False)
        assert plan[0] == ()
        # Position 1 binds edge 1; edge 1 is the later side of (0,1,4).
        assert plan[1] == ((0, 4.0, 0.0),)
        assert plan[2] == ((1, 6.0, 0.0),)

    def test_direct_plan_attributes_check_to_second_bound_side(self):
        # Reversed order: edge 0 (the earlier side) now binds second, so
        # the bound flips to t0 in [t1 - 4, t1].
        plan = build_edge_window_plan((1, 0, 2), CHAIN, closure=False)
        assert plan[0] == ()
        assert plan[1] == ((1, 0.0, 4.0),)
        assert plan[2] == ((1, 6.0, 0.0),)

    def test_closure_plan_adds_transitive_bounds(self):
        plan = build_edge_window_plan((0, 1, 2), CHAIN, closure=True)
        # Edge 2 is bounded by edge 1 directly *and* by edge 0 through
        # the closure: t2 - t0 in [0, 10].
        entries = {other: (hi, lo) for other, hi, lo in plan[2]}
        assert entries[1] == (6.0, 0.0)
        assert entries[0] == (10.0, 0.0)

    def test_closure_plan_bounds_both_directions(self):
        # Binding edge 1 before edge 0 bounds t0 from above via t1.
        plan = build_edge_window_plan((1, 0, 2), CHAIN, closure=True)
        entries = {other: (hi, lo) for other, hi, lo in plan[1]}
        assert entries[1] == (0.0, 4.0)

    def test_unconstrained_edges_get_empty_bounds(self):
        tc = TemporalConstraints([], num_edges=2)
        assert build_edge_window_plan((0, 1), tc) == ((), ())


class TestFeasibleWindow:
    def test_empty_bounds_is_no_window(self):
        assert feasible_window((), [None, None]) == NO_WINDOW

    def test_single_two_sided_bound(self):
        window = feasible_window(((0, 4.0, 0.0),), [10, None])
        assert window == (10.0, 14.0)

    def test_one_sided_bound_keeps_other_side_infinite(self):
        lo, hi = feasible_window(((0, math.inf, 3.0),), [10, None])
        assert lo == 7.0 and hi == math.inf

    def test_zero_gap_collapses_to_a_point(self):
        window = feasible_window(((0, 0.0, 0.0),), [10])
        assert window == (10.0, 10.0)

    def test_intersection_of_two_bounds(self):
        bounds = ((0, 4.0, 0.0), (1, 0.0, 6.0))
        window = feasible_window(bounds, [10, 12])
        assert window == (10.0, 12.0)

    def test_contradictory_bounds_collapse_to_none(self):
        # t in [t0, t0+4] and t in [t1-0, t1] with t0=0, t1=50.
        bounds = ((0, 4.0, 0.0), (1, 0.0, 0.0))
        assert feasible_window(bounds, [0, 50]) is None

    def test_closure_collapse_on_concrete_times(self):
        # Chain closure: t2 in [t0, t0+10]; times 0 then 11 are dead even
        # though each raw constraint alone would still admit a window.
        plan = build_edge_window_plan((0, 2, 1), CHAIN, closure=True)
        assert feasible_window(plan[1], [0, None, None]) is not None
        edge_times = [0, None, 11]
        assert feasible_window(plan[2], edge_times) is None


class TestWindowSlice:
    def test_unbounded_window_returns_the_same_object(self):
        times = [1, 5, 9]
        assert window_slice(times, -math.inf, math.inf) is times

    def test_bisected_slice_is_inclusive(self):
        times = [1, 3, 5, 7, 9]
        assert list(window_slice(times, 3, 7)) == [3, 5, 7]

    def test_float_bounds_against_int_runs(self):
        times = [1, 3, 5, 7, 9]
        assert list(window_slice(times, 2.5, 7.5)) == [3, 5, 7]

    def test_empty_result_window(self):
        assert list(window_slice([1, 9], 2, 8)) == []

    def test_works_on_memoryview_runs(self):
        import array

        run = memoryview(array.array("q", [1, 3, 5, 7]))
        assert list(window_slice(run, 3, 5)) == [3, 5]


class TestWindowedTimes:
    def test_counters_split_expanded_vs_skipped(self):
        stats = SearchStats()
        kept = windowed_times([1, 3, 5, 7, 9], (3.0, 7.0), stats)
        assert list(kept) == [3, 5, 7]
        assert stats.timestamps_expanded == 3
        assert stats.timestamps_skipped == 2

    def test_no_window_degrades_to_expand_everything(self):
        stats = SearchStats()
        kept = windowed_times([1, 3, 5], NO_WINDOW, stats)
        assert list(kept) == [1, 3, 5]
        assert stats.timestamps_expanded == 3
        assert stats.timestamps_skipped == 0

    def test_stats_optional(self):
        assert list(windowed_times([1, 3], (0.0, 2.0))) == [1]


class TestConstraintSlices:
    def test_empty_run_skips_everything(self):
        stats = SearchStats()
        e, l = constraint_slices([], [1, 2, 3], 5, stats)
        assert (list(e), list(l)) == ([], [])
        assert stats.timestamps_expanded == 0
        assert stats.timestamps_skipped == 3

    def test_counters_cover_both_runs(self):
        stats = SearchStats()
        e, l = constraint_slices([0, 10, 20], [12, 40], 3, stats)
        assert stats.timestamps_expanded == len(e) + len(l)
        assert stats.timestamps_skipped == 5 - stats.timestamps_expanded

    @pytest.mark.parametrize("seed", range(30))
    def test_preserves_windows_compatible(self, seed):
        rng = random.Random(seed)
        earlier = sorted(rng.sample(range(50), rng.randint(0, 10)))
        later = sorted(rng.sample(range(50), rng.randint(0, 10)))
        gap = rng.randint(0, 12)
        e, l = constraint_slices(earlier, later, gap)
        assert windows_compatible(e, l, gap) == windows_compatible(
            earlier, later, gap
        )

    def test_zero_gap(self):
        e, l = constraint_slices([1, 5, 9], [5, 20], 0)
        assert windows_compatible(e, l, 0)
        assert 5 in list(e) and 5 in list(l)


class TestPropagateRunWindows:
    DIST = CHAIN.distance_matrix()

    def test_empty_run_is_dead(self):
        assert propagate_run_windows([[1], [], [2]], self.DIST) is None

    def test_collapse_is_dead(self):
        # t1 must lie in [t0, t0+4]: runs {0} and {50} cannot meet.
        assert propagate_run_windows([[0], [50], [60]], self.DIST) is None

    def test_unconstrained_edges_get_no_window(self):
        dist = TemporalConstraints([], num_edges=2).distance_matrix()
        windows = propagate_run_windows([[1, 2], [9]], dist)
        assert windows == [NO_WINDOW, NO_WINDOW]

    @pytest.mark.parametrize("seed", range(30))
    def test_slicing_preserves_assignment_count(self, seed):
        rng = random.Random(seed)
        runs = [
            sorted(rng.sample(range(25), rng.randint(1, 6)))
            for _ in range(3)
        ]
        exact = count_timestamp_assignments(runs, CHAIN)
        windows = propagate_run_windows(runs, self.DIST)
        if windows is None:
            assert exact == 0
            return
        sliced = [
            list(window_slice(run, lo, hi))
            for run, (lo, hi) in zip(runs, windows)
        ]
        assert count_timestamp_assignments(sliced, CHAIN) == exact
