"""Tests for the edge-label generalisation (Section II of the paper).

The paper notes: "we only consider graphs with labeled vertices.
However, if edges are also labeled, the algorithm can be easily
generalized."  This suite verifies the generalisation across every
matcher: a labeled query edge matches only data edges carrying the same
label; unlabeled query edges remain wildcards.
"""

import pytest

from repro.baselines import BASELINE_NAMES
from repro.core import brute_force_matches, find_matches, is_valid_match
from repro.datasets import random_instance
from repro.errors import GraphError, QueryError
from repro.graphs import (
    QueryBuilder,
    QueryGraph,
    TemporalGraph,
    TemporalGraphBuilder,
)

ALL_ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve") + BASELINE_NAMES


@pytest.fixture
def labeled_instance():
    """Transfer/payment example: same structure, different edge labels."""
    qb = QueryBuilder()
    qb.vertex("a", "acct").vertex("b", "acct").vertex("c", "acct")
    qb.edge("a", "b", label="wire")
    qb.edge("b", "c", label="cash")
    query, _ = qb.build()

    gb = TemporalGraphBuilder()
    for name in ("x", "y", "z"):
        gb.vertex(name, "acct")
    gb.edge("x", "y", 1, label="wire")
    gb.edge("y", "z", 2, label="cash")   # the only valid continuation
    gb.edge("y", "z", 3, label="wire")   # right pair, wrong edge label
    gb.edge("y", "x", 4, label="cash")   # wrong direction target
    graph, names = gb.build()
    from repro.graphs import TemporalConstraints

    constraints = TemporalConstraints([(0, 1, 10)], num_edges=2)
    return query, constraints, graph, names


class TestStorage:
    def test_edge_label_roundtrip(self):
        g = TemporalGraph(["A", "B"])
        g.add_edge(0, 1, 5, label="wire")
        g.add_edge(0, 1, 6)
        assert g.edge_label(0, 1, 5) == "wire"
        assert g.edge_label(0, 1, 6) is None
        assert g.has_edge_labels

    def test_unlabeled_graph_flag(self):
        g = TemporalGraph(["A", "B"], [(0, 1, 5)])
        assert not g.has_edge_labels

    def test_conflicting_relabel_rejected(self):
        g = TemporalGraph(["A", "B"])
        g.add_edge(0, 1, 5, label="wire")
        with pytest.raises(GraphError, match="already present"):
            g.add_edge(0, 1, 5, label="cash")

    def test_duplicate_with_same_label_is_noop(self):
        g = TemporalGraph(["A", "B"])
        g.add_edge(0, 1, 5, label="wire")
        assert g.add_edge(0, 1, 5, label="wire") is False
        assert g.num_temporal_edges == 1

    def test_timestamps_with_label(self):
        g = TemporalGraph(["A", "B"])
        g.add_edge(0, 1, 5, label="wire")
        g.add_edge(0, 1, 6, label="cash")
        g.add_edge(0, 1, 7, label="wire")
        assert g.timestamps_with_label(0, 1, "wire") == [5, 7]
        assert g.timestamps_with_label(0, 1, "cash") == [6]
        assert g.timestamps_with_label(0, 1, "nope") == []

    def test_time_prefix_preserves_edge_labels(self):
        g = TemporalGraph(["A", "B"])
        g.add_edge(0, 1, 1, label="wire")
        g.add_edge(0, 1, 9, label="cash")
        half = g.time_prefix(0.5)
        assert half.edge_label(0, 1, 1) == "wire"

    def test_query_edge_labels(self):
        q = QueryGraph(["A", "B"], [(0, 1)], edge_labels=["wire"])
        assert q.edge_label(0) == "wire"
        assert q.has_edge_labels
        assert not QueryGraph(["A", "B"], [(0, 1)]).has_edge_labels

    def test_query_edge_label_arity(self):
        with pytest.raises(QueryError, match="edge labels"):
            QueryGraph(["A", "B"], [(0, 1)], edge_labels=["a", "b"])


class TestMatchingSemantics:
    @pytest.mark.parametrize(
        "algo", ("brute-force",) + ALL_ALGORITHMS
    )
    def test_labeled_query_filters_edges(self, labeled_instance, algo):
        query, tc, graph, names = labeled_instance
        result = find_matches(query, tc, graph, algorithm=algo)
        assert result.num_matches == 1
        match = result.matches[0]
        assert match.edge_map[0].t == 1
        assert match.edge_map[1].t == 2
        assert is_valid_match(query, tc, graph, match)

    def test_unlabeled_query_matches_everything(self, labeled_instance):
        _, tc, graph, _ = labeled_instance
        wildcard = QueryGraph(["acct"] * 3, [(0, 1), (1, 2)])
        result = find_matches(wildcard, tc, graph, algorithm="tcsm-eve")
        # (x->y@1, y->z@2), (x->y@1, y->z@3), and (z<-y ... ) chains:
        # wildcard matching sees all structurally valid combinations.
        assert result.num_matches >= 2
        oracle = brute_force_matches(wildcard, tc, graph)
        assert set(result.matches) == set(oracle)

    def test_query_label_absent_from_data(self, labeled_instance):
        _, tc, graph, _ = labeled_instance
        query = QueryGraph(
            ["acct"] * 3, [(0, 1), (1, 2)], edge_labels=["sepa", None]
        )
        for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve", "ri-ds"):
            assert find_matches(query, tc, graph, algorithm=algo).num_matches == 0

    def test_is_valid_match_rejects_wrong_edge_label(self, labeled_instance):
        query, tc, graph, _ = labeled_instance
        match = find_matches(query, tc, graph, algorithm="tcsm-eve").matches[0]
        from repro.core import Match
        from repro.graphs import TemporalEdge

        em = list(match.edge_map)
        em[1] = TemporalEdge(em[1].u, em[1].v, 3)  # the 'wire' edge
        assert not is_valid_match(query, tc, graph, Match(tuple(em), match.vertex_map))


class TestDifferentialWithEdgeLabels:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_matchers_agree(self, seed):
        import random

        rng = random.Random(seed)
        query, tc, graph = random_instance(seed=seed)
        # Randomly tag data edges and require labels on some query edges.
        relabeled = TemporalGraph(graph.labels)
        for edge in graph.edges():
            relabeled.add_edge(
                edge.u, edge.v, edge.t,
                label=rng.choice(["wire", "cash", None]),
            )
        edge_labels = [
            rng.choice(["wire", "cash", None, None])
            for _ in range(query.num_edges)
        ]
        labeled_query = QueryGraph(query.labels, query.edges, edge_labels)
        oracle = set(brute_force_matches(labeled_query, tc, relabeled))
        for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve", "ri-ds",
                     "graphflow", "sj-tree", "symbi"):
            got = set(
                find_matches(
                    labeled_query, tc, relabeled, algorithm=algo
                ).matches
            )
            assert got == oracle, f"{algo} disagrees on edge labels"
