"""Tests for the result cache (generic LRU keyed by graph version)."""

import pytest

from repro.core import MatchOptions
from repro.service import ResultCache, ResultKey, match_options_fingerprint


def _key(pattern="p", graph="g", version=1, limit=None, collect=True):
    return ResultKey(
        graph_name=graph,
        graph_version=version,
        graph_fingerprint=f"fp-{graph}-{version}",
        pattern=pattern,
        algorithm="tcsm-eve",
        options="",
        match_options=match_options_fingerprint(
            MatchOptions(limit=limit, collect_matches=collect)
        ),
    )


class TestResultCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            ResultCache(capacity=0)

    def test_get_miss_returns_none(self):
        cache: ResultCache[str] = ResultCache()
        assert cache.get(_key()) is None

    def test_put_then_get(self):
        cache: ResultCache[str] = ResultCache()
        cache.put(_key(), "answer")
        assert cache.get(_key()) == "answer"

    def test_limit_and_collect_are_part_of_the_key(self):
        # Both travel through the canonical MatchOptions hash now.
        cache: ResultCache[str] = ResultCache()
        cache.put(_key(limit=None), "all")
        cache.put(_key(limit=5), "five")
        cache.put(_key(collect=False), "count")
        assert cache.get(_key(limit=None)) == "all"
        assert cache.get(_key(limit=5)) == "five"
        assert cache.get(_key(collect=False)) == "count"

    def test_lru_eviction_respects_recency(self):
        cache: ResultCache[str] = ResultCache(capacity=2)
        cache.put(_key("p1"), "one")
        cache.put(_key("p2"), "two")
        cache.get(_key("p1"))  # refresh: p2 becomes least recently used
        cache.put(_key("p3"), "three")
        assert cache.get(_key("p2")) is None
        assert cache.get(_key("p1")) == "one"
        assert len(cache) == 2

    def test_invalidate_graph_keeps_current_version(self):
        cache: ResultCache[str] = ResultCache()
        cache.put(_key(version=1), "old")
        cache.put(_key(version=2), "new")
        cache.put(_key(graph="other"), "untouched")
        assert cache.invalidate_graph("g", keep_version=2) == 1
        assert cache.get(_key(version=1)) is None
        assert cache.get(_key(version=2)) == "new"
        assert cache.get(_key(graph="other")) == "untouched"

    def test_invalidate_graph_without_keep_drops_everything(self):
        cache: ResultCache[str] = ResultCache()
        cache.put(_key(version=1), "old")
        cache.put(_key(version=2), "new")
        assert cache.invalidate_graph("g") == 2
        assert len(cache) == 0

    def test_clear(self):
        cache: ResultCache[str] = ResultCache()
        cache.put(_key(), "answer")
        cache.clear()
        assert len(cache) == 0
