"""Cache correctness and exact top-k for ``limit`` / ``order_by`` / ``mode``.

Two families of guarantees ride on the sink refactor:

* **Cache correctness** — the result cache keys on the full
  ``MatchOptions`` fingerprint, so a cached complete enumeration can
  never answer a ``limit=k`` query (or vice versa), ordered answers
  never serve unordered requests, and ``mode="estimate"`` results never
  enter the exact-result cache at all.
* **Exact top-k** — ``order_by="earliest"`` with a ``limit`` must
  return the *global* top-k multiset — identical to sorting the full
  enumeration — for every TCSM algorithm, both executor pools, and
  every partition strategy, because per-partition bounded heaps merge
  through one total order (:func:`repro.core.sinks.match_sort_key`).
"""

import random

import pytest

from repro.core import find_matches, match_sort_key
from repro.graphs import (
    QueryGraph,
    TemporalConstraints,
    TemporalGraph,
    ensure_snapshot,
)
from repro.service import ServiceConfig, TCSMService

TCSM_ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
STRATEGIES = ("stride", "range", "label")
TOP_K = 7


@pytest.fixture(scope="module")
def dense():
    """A two-label random graph dense enough for a meaningful top-k."""
    rng = random.Random(11)
    n, degree, times_per_pair = 40, 6, 4
    labels = ["A" if i % 2 == 0 else "B" for i in range(n)]
    graph = TemporalGraph(labels)
    for u in range(n):
        targets = rng.sample([v for v in range(n) if v != u], degree)
        for v in targets:
            for _ in range(times_per_pair):
                graph.add_edge(u, v, rng.randrange(0, 1000))
    query = QueryGraph(["A", "B", "A"], [(0, 1), (1, 2)])
    constraints = TemporalConstraints([(0, 1, 300)], num_edges=2)
    return ensure_snapshot(graph), query, constraints


@pytest.fixture(scope="module")
def reference_topk(dense):
    """Sorted full enumeration: the pinned exact top-k answer."""
    graph, query, constraints = dense
    full = find_matches(query, constraints, graph, algorithm="tcsm-eve")
    assert full.stats.matches > TOP_K  # top-k must actually select
    ordered = sorted(full.matches, key=match_sort_key)
    return ordered[:TOP_K], full.stats.matches


@pytest.fixture()
def service(dense):
    graph, _, _ = dense
    with TCSMService(ServiceConfig(max_workers=3)) as svc:
        svc.load_graph("dense", graph)
        yield svc


class TestCacheCorrectness:
    def test_full_result_never_serves_limited_query(self, service, dense):
        _, query, constraints = dense
        full = service.query("dense", query, constraints)
        assert full.result_cache == "miss"
        limited = service.query("dense", query, constraints, limit=2)
        assert limited.result_cache == "miss"  # distinct cache key
        assert len(limited.matches) == 2
        assert limited.truncated_by_limit
        again = service.query("dense", query, constraints)
        assert again.result_cache == "hit"  # the full entry is still there
        assert again.matches == full.matches

    def test_limited_result_never_serves_full_query(self, service, dense):
        _, query, constraints = dense
        limited = service.query("dense", query, constraints, limit=2)
        assert len(limited.matches) == 2
        full = service.query("dense", query, constraints)
        assert full.result_cache == "miss"
        assert len(full.matches) > 2
        assert not full.truncated_by_limit

    def test_order_by_keys_cache_separately(self, service, dense):
        _, query, constraints = dense
        service.query("dense", query, constraints, limit=TOP_K)
        ordered = service.query(
            "dense", query, constraints, limit=TOP_K, order_by="earliest"
        )
        assert ordered.result_cache == "miss"  # not the any-order entry
        assert ordered.ordered
        keys = [match_sort_key(m) for m in ordered.matches]
        assert keys == sorted(keys)

    def test_estimate_never_enters_exact_cache(self, service, dense):
        _, query, constraints = dense
        estimated = service.query(
            "dense", query, constraints, mode="estimate"
        )
        assert estimated.result_cache == "bypass"
        assert estimated.plan_cache == "bypass"
        assert estimated.estimate is not None
        assert estimated.matches == ()
        assert len(service.results) == 0  # nothing cached
        exact = service.query("dense", query, constraints, mode="count")
        assert exact.result_cache == "miss"
        assert exact.estimate is None
        # The estimate is a positive count with a sane interval.
        assert estimated.estimate.count > 0
        assert (
            estimated.estimate.ci_low
            <= estimated.estimate.count
            <= estimated.estimate.ci_high
        )

    def test_estimate_is_seed_deterministic(self, service, dense):
        _, query, constraints = dense
        options = {"probes": 64, "seed": 3}
        first = service.query(
            "dense", query, constraints, mode="estimate", options=options
        )
        second = service.query(
            "dense", query, constraints, mode="estimate", options=options
        )
        assert first.estimate.count == second.estimate.count

    def test_mode_metrics(self, service, dense):
        _, query, constraints = dense
        service.query("dense", query, constraints, mode="estimate")
        service.query("dense", query, constraints, limit=1)
        assert service.metrics.counter("queries_estimated") == 1
        assert service.metrics.counter("queries_truncated") == 1

    def test_jsonl_tags_truncation_cause(self, service, dense):
        from repro.graphs import pattern_to_dict

        _, query, constraints = dense
        pattern = pattern_to_dict(query, constraints)
        limited = service.submit(
            {"op": "query", "graph": "dense", "pattern": pattern, "limit": 2}
        )
        assert limited["status"] == "ok"
        assert limited["truncated_by_limit"] is True
        assert limited["truncated_by_deadline"] is False
        estimated = service.submit(
            {
                "op": "query",
                "graph": "dense",
                "pattern": pattern,
                "mode": "estimate",
                "probes": 64,
            }
        )
        assert estimated["status"] == "ok"
        assert estimated["estimate"]["probes"] == 64
        assert estimated["estimate"]["ci_low"] <= estimated["estimate"]["count"]
        assert "matches" not in estimated  # never enumerated

    def test_invalid_mode_is_structured_error(self, service, dense):
        from repro.graphs import pattern_to_dict

        _, query, constraints = dense
        pattern = pattern_to_dict(query, constraints)
        response = service.submit(
            {
                "op": "query",
                "graph": "dense",
                "pattern": pattern,
                "mode": "telepathy",
            }
        )
        assert response["status"] == "error"
        assert "mode" in response["error"]


class TestExactTopK:
    """Every algorithm x pool x strategy returns the pinned top-k."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
    def test_thread_pool_topk_is_exact(
        self, dense, reference_topk, algorithm, strategy
    ):
        graph, query, constraints = dense
        expected, total = reference_topk
        with TCSMService(ServiceConfig(max_workers=3)) as svc:
            svc.load_graph("dense", graph)
            result = svc.query(
                "dense",
                query,
                constraints,
                algorithm=algorithm,
                limit=TOP_K,
                order_by="earliest",
                workers=3,
                partition_strategy=strategy,
            )
        assert list(result.matches) == expected
        assert result.ordered
        assert result.truncated_by_limit  # N > k was selected down
        assert result.stats.matches == total  # full per-partition sweep

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
    def test_process_pool_topk_is_exact(
        self, process_service, dense, reference_topk, algorithm, strategy
    ):
        _, query, constraints = dense
        expected, _ = reference_topk
        result = process_service.query(
            "dense",
            query,
            constraints,
            algorithm=algorithm,
            limit=TOP_K,
            order_by="earliest",
            workers=3,
            partition_strategy=strategy,
            use_result_cache=False,
        )
        assert list(result.matches) == expected
        assert result.ordered

    def test_single_worker_topk_matches_fanout(self, dense, reference_topk):
        graph, query, constraints = dense
        expected, _ = reference_topk
        with TCSMService(ServiceConfig(max_workers=3)) as svc:
            svc.load_graph("dense", graph)
            solo = svc.query(
                "dense",
                query,
                constraints,
                limit=TOP_K,
                order_by="earliest",
                workers=1,
            )
        assert list(solo.matches) == expected


@pytest.fixture(scope="module")
def process_service(dense):
    """One process-pool service shared across the parametrized matrix
    (pool spin-up is the expensive part)."""
    graph, _, _ = dense
    with TCSMService(
        ServiceConfig(max_workers=3, pool="process")
    ) as svc:
        svc.load_graph("dense", graph)
        yield svc
