"""Multithreaded stress tests for the service's shared state.

Hammers the plan cache, result cache, metrics registry, and trace store
from many threads with overlapping keys, asserting the invariants the
static analyzer (R013) and the runtime sanitizer certify structurally:

* no lost updates — counters sum exactly, every cache insert lands;
* single-flight plan builds — concurrent misses on one key build once;
* the per-key build-lock dict does not leak (the PR's plans.py fix);
* exact match multisets — every concurrent query returns the same
  answer the single-threaded run returns.

CI runs this file twice: once plain and once under ``REPRO_SANITIZE=1``,
where the write barrier and lock-held assertions are live.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import find_matches
from repro.service import (
    CachedPlan,
    MetricsRegistry,
    PlanCache,
    PlanKey,
    ResultCache,
    ResultKey,
    ServiceConfig,
    TCSMService,
    TraceStore,
)

THREADS = 8
ROUNDS = 40


def _plan_key(i: int) -> PlanKey:
    return PlanKey(
        graph_name="g",
        graph_version=1,
        graph_fingerprint="f",
        pattern=f"p{i}",
        algorithm="tcsm-eve",
        options="",
    )


def _result_key(i: int) -> ResultKey:
    return ResultKey(
        graph_name="g",
        graph_version=1,
        graph_fingerprint="f",
        pattern=f"p{i}",
        algorithm="tcsm-eve",
        options="",
        match_options="m",
    )


def _fanout(worker, threads: int = THREADS) -> list:
    """Run *worker(thread_index)* on *threads* threads, propagating errors."""
    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(worker, t) for t in range(threads)]
        return [f.result() for f in futures]


class TestPlanCacheStress:
    def test_single_flight_builds_with_overlapping_keys(self) -> None:
        cache = PlanCache(capacity=64)
        builds: dict[PlanKey, int] = {}
        build_lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def build_for(key: PlanKey) -> CachedPlan:
            with build_lock:
                builds[key] = builds.get(key, 0) + 1
            return CachedPlan(key=key, matcher=None, build_seconds=0.0)

        def worker(t: int) -> None:
            barrier.wait()
            for r in range(ROUNDS):
                key = _plan_key(r % 4)  # heavy key overlap across threads
                plan, _hit = cache.get_or_build(key, lambda: build_for(key))
                assert plan.key == key

        _fanout(worker)
        # Every key was built at least once; single-flight means a key
        # already in the cache is never rebuilt, so the only legitimate
        # rebuilds are post-eviction — capacity 64 >> 4 keys, so none.
        assert set(builds.values()) == {1}, builds
        assert cache.pending_builds == 0

    def test_build_lock_dict_does_not_leak(self) -> None:
        cache = PlanCache(capacity=2)  # tiny: constant eviction churn
        barrier = threading.Barrier(THREADS)

        def worker(t: int) -> None:
            barrier.wait()
            for r in range(ROUNDS):
                key = _plan_key((t * ROUNDS + r) % 16)
                cache.get_or_build(
                    key,
                    lambda: CachedPlan(
                        key=key, matcher=None, build_seconds=0.0
                    ),
                )

        _fanout(worker)
        # The seed bug: one per-key lock leaked for every key ever built.
        assert cache.pending_builds == 0
        assert len(cache) <= 2

    def test_failed_build_releases_key_lock(self) -> None:
        cache = PlanCache(capacity=8)
        key = _plan_key(0)

        def boom() -> CachedPlan:
            raise RuntimeError("prepare failed")

        for _ in range(3):
            with pytest.raises(RuntimeError, match="prepare failed"):
                cache.get_or_build(key, boom)
        assert cache.pending_builds == 0
        # The key is still buildable after failures.
        plan, hit = cache.get_or_build(
            key, lambda: CachedPlan(key=key, matcher=None, build_seconds=0.0)
        )
        assert not hit and plan.key == key
        assert cache.pending_builds == 0


class TestResultCacheStress:
    def test_no_lost_inserts_under_contention(self) -> None:
        cache: ResultCache[int] = ResultCache(capacity=1024)
        barrier = threading.Barrier(THREADS)

        def worker(t: int) -> None:
            barrier.wait()
            for r in range(ROUNDS):
                key = _result_key(t * ROUNDS + r)
                cache.put(key, t * ROUNDS + r)

        _fanout(worker)
        assert len(cache) == THREADS * ROUNDS
        for t in range(THREADS):
            for r in range(ROUNDS):
                assert cache.get(_result_key(t * ROUNDS + r)) == t * ROUNDS + r

    def test_eviction_keeps_size_bounded(self) -> None:
        cache: ResultCache[int] = ResultCache(capacity=16)

        def worker(t: int) -> None:
            for r in range(ROUNDS):
                cache.put(_result_key(t * ROUNDS + r), r)

        _fanout(worker)
        assert len(cache) <= 16


class TestMetricsStress:
    def test_counter_increments_are_not_lost(self) -> None:
        metrics = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def worker(t: int) -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                metrics.inc("queries_total")
                metrics.inc(f"queries_total.thread{t}")
                metrics.observe("latency", 0.001 * t)

        _fanout(worker)
        assert metrics.counter("queries_total") == THREADS * ROUNDS
        for t in range(THREADS):
            assert metrics.counter(f"queries_total.thread{t}") == ROUNDS
        snap = metrics.snapshot()
        assert snap["histograms"]["latency"]["count"] == THREADS * ROUNDS


class TestTraceStoreStress:
    def test_trace_ids_unique_and_store_bounded(self) -> None:
        store = TraceStore(capacity=8)
        ids: list[list[str]] = [[] for _ in range(THREADS)]

        def worker(t: int) -> None:
            for _ in range(ROUNDS):
                trace_id = store.next_trace_id()
                ids[t].append(trace_id)
                store.put(trace_id, {"thread": t})

        _fanout(worker)
        flat = [i for per_thread in ids for i in per_thread]
        assert len(set(flat)) == THREADS * ROUNDS  # no duplicate ids
        assert len(store) <= 8


class TestServiceEndToEnd:
    """Exact multisets from a fully concurrent serving stack."""

    def test_concurrent_queries_return_exact_multisets(
        self, toy, workload, cm_graph
    ) -> None:
        query, constraints = workload
        expected = sorted(
            find_matches(query, constraints, cm_graph, "tcsm-eve").matches
        )
        toy_query, toy_constraints, toy_graph, _, _ = toy
        toy_expected = sorted(
            find_matches(
                toy_query, toy_constraints, toy_graph, "tcsm-eve"
            ).matches
        )
        config = ServiceConfig(
            max_workers=THREADS, max_inflight=THREADS * 2, trace_sample_rate=0.1
        )
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            svc.load_graph("toy", toy_graph)
            barrier = threading.Barrier(THREADS)

            def worker(t: int) -> list:
                barrier.wait()
                out = []
                for r in range(6):
                    if (t + r) % 2:
                        result = svc.query(
                            "cm",
                            query,
                            constraints,
                            algorithm="tcsm-eve",
                            use_result_cache=bool(r % 2),
                        )
                        out.append(("cm", sorted(result.matches)))
                    else:
                        result = svc.query(
                            "toy",
                            toy_query,
                            toy_constraints,
                            algorithm="tcsm-eve",
                            use_result_cache=bool(r % 2),
                        )
                        out.append(("toy", sorted(result.matches)))
                    assert not result.timed_out
                return out

            for name, matches in (
                pair for worker_out in _fanout(worker) for pair in worker_out
            ):
                if name == "cm":
                    assert matches == expected
                else:
                    assert matches == toy_expected
            assert svc.plans.pending_builds == 0

    def test_concurrent_graph_replacement_never_mixes_versions(
        self, toy
    ) -> None:
        toy_query, toy_constraints, toy_graph, _, _ = toy
        expected = sorted(
            find_matches(
                toy_query, toy_constraints, toy_graph, "tcsm-eve"
            ).matches
        )
        with TCSMService(ServiceConfig(max_workers=4)) as svc:
            svc.load_graph("g", toy_graph)
            stop = threading.Event()
            errors: list[BaseException] = []

            def reloader() -> None:
                while not stop.is_set():
                    svc.load_graph("g", toy_graph)

            def querier() -> None:
                try:
                    for _ in range(20):
                        result = svc.query(
                            "g", toy_query, toy_constraints,
                            algorithm="tcsm-eve",
                        )
                        assert sorted(result.matches) == expected
                except BaseException as exc:  # propagated to the assertion
                    errors.append(exc)

            reload_thread = threading.Thread(target=reloader)
            reload_thread.start()
            try:
                threads = [
                    threading.Thread(target=querier) for _ in range(THREADS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            finally:
                stop.set()
                reload_thread.join()
            assert errors == []
