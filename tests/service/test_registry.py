"""Tests for the versioned graph registry."""

import pytest

from repro.errors import ServiceError, UnknownGraphError
from repro.service import GraphRegistry


class TestGraphRegistry:
    def test_register_and_get(self, cm_graph):
        registry = GraphRegistry()
        handle = registry.register("cm", cm_graph)
        assert handle.name == "cm"
        assert handle.version == 1
        assert registry.get("cm") is handle

    def test_reregister_bumps_version(self, cm_graph):
        registry = GraphRegistry()
        registry.register("cm", cm_graph)
        replaced = registry.register("cm", cm_graph)
        assert replaced.version == 2
        assert registry.get("cm").version == 2
        assert len(registry) == 1

    def test_version_survives_drop(self, cm_graph):
        """A name re-registered after a drop never reuses an old version —
        cache keys embedding (name, version) must stay unambiguous."""
        registry = GraphRegistry()
        registry.register("cm", cm_graph)
        registry.register("cm", cm_graph)
        registry.drop("cm")
        revived = registry.register("cm", cm_graph)
        assert revived.version == 3

    def test_get_unknown_lists_registered_names(self, cm_graph):
        registry = GraphRegistry()
        registry.register("alpha", cm_graph)
        registry.register("beta", cm_graph)
        with pytest.raises(UnknownGraphError, match="alpha, beta"):
            registry.get("gamma")

    def test_get_unknown_on_empty_registry(self):
        with pytest.raises(UnknownGraphError, match=r"\(none\)"):
            GraphRegistry().get("anything")

    def test_unknown_graph_error_is_a_service_error(self):
        with pytest.raises(ServiceError):
            GraphRegistry().get("anything")

    def test_drop_unknown_raises(self):
        with pytest.raises(UnknownGraphError):
            GraphRegistry().drop("ghost")

    def test_names_and_handles_sorted(self, cm_graph):
        registry = GraphRegistry()
        registry.register("zeta", cm_graph)
        registry.register("alpha", cm_graph)
        assert registry.names() == ("alpha", "zeta")
        assert [h.name for h in registry.handles()] == ["alpha", "zeta"]

    def test_describe_is_plain_data(self, cm_graph):
        handle = GraphRegistry().register("cm", cm_graph)
        described = handle.describe()
        assert described["name"] == "cm"
        assert described["version"] == 1
        assert described["num_vertices"] == cm_graph.num_vertices
        assert described["num_temporal_edges"] == cm_graph.num_temporal_edges
