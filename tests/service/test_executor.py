"""Tests for the partitioned query executor (thread and process pools)."""

import pytest

from repro.core import create_matcher, find_matches
from repro.service import ExecutionOutcome, ProcessSpec, QueryExecutor


@pytest.fixture(scope="module")
def prepared_eve(toy):
    query, tc, graph, _, _ = toy
    matcher = create_matcher("tcsm-eve", query, tc, graph)
    matcher.prepare()
    return matcher


class TestConstruction:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="max_workers"):
            QueryExecutor(max_workers=0)

    def test_rejects_unknown_pool(self):
        with pytest.raises(ValueError, match="pool"):
            QueryExecutor(pool="fibers")

    def test_context_manager_closes(self):
        with QueryExecutor(max_workers=1) as executor:
            assert executor.max_workers == 1


class TestEffectiveWorkers:
    def test_defaults_to_pool_size(self, prepared_eve):
        with QueryExecutor(max_workers=3) as executor:
            assert executor.effective_workers(prepared_eve) == 3

    def test_caps_request_at_pool_size(self, prepared_eve):
        with QueryExecutor(max_workers=2) as executor:
            assert executor.effective_workers(prepared_eve, workers=8) == 2

    def test_clamps_to_one_without_partition_support(self, toy):
        query, tc, graph, _, _ = toy
        baseline = create_matcher("ri-ds", query, tc, graph)
        with QueryExecutor(max_workers=4) as executor:
            assert executor.effective_workers(baseline) == 1


class TestThreadExecution:
    def test_single_worker_matches_engine(self, toy, prepared_eve):
        query, tc, graph, _, _ = toy
        reference = find_matches(query, tc, graph, algorithm="tcsm-eve")
        with QueryExecutor(max_workers=1) as executor:
            outcome = executor.run_matcher(prepared_eve)
        assert isinstance(outcome, ExecutionOutcome)
        assert outcome.partitions == 1
        assert sorted(outcome.matches) == sorted(reference.matches)

    def test_fanned_out_matches_single_worker(self, prepared_eve):
        with QueryExecutor(max_workers=4) as executor:
            solo = executor.run_matcher(prepared_eve, workers=1)
            fanned = executor.run_matcher(prepared_eve, workers=4)
        assert fanned.partitions == 4
        assert sorted(fanned.matches) == sorted(solo.matches)
        assert fanned.stats.matches == solo.stats.matches

    def test_global_limit_is_reapplied_after_merge(self, prepared_eve):
        with QueryExecutor(max_workers=3) as executor:
            outcome = executor.run_matcher(prepared_eve, limit=1, workers=3)
        assert len(outcome.matches) == 1
        assert outcome.stats.matches == 1
        assert outcome.stats.budget_exhausted
        assert not outcome.stats.deadline_hit

    def test_expired_deadline_sets_deadline_hit(self, prepared_eve):
        with QueryExecutor(max_workers=2) as executor:
            outcome = executor.run_matcher(prepared_eve, deadline=0.0, workers=2)
        assert outcome.stats.deadline_hit
        assert outcome.stats.budget_exhausted
        assert outcome.matches == ()

    def test_collect_matches_false_still_counts(self, prepared_eve):
        with QueryExecutor(max_workers=2) as executor:
            counted = executor.run_matcher(prepared_eve, workers=2,
                                           collect_matches=False)
            collected = executor.run_matcher(prepared_eve, workers=2)
        assert counted.matches == ()
        assert counted.stats.matches == collected.stats.matches

    def test_timings_are_nonnegative(self, prepared_eve):
        with QueryExecutor(max_workers=2) as executor:
            outcome = executor.run_matcher(prepared_eve, workers=2)
        assert outcome.queue_seconds >= 0.0
        assert outcome.match_seconds >= 0.0


class TestTracedExecution:
    def test_fanned_out_run_emits_partition_spans(self, prepared_eve):
        from repro.obs import Tracer

        tracer = Tracer()
        with QueryExecutor(max_workers=3) as executor:
            outcome = executor.run_matcher(
                prepared_eve, workers=3, tracer=tracer
            )
        spans = list(tracer.iter_spans("partition"))
        assert {span.name for span in spans} == {
            "partition:0/3", "partition:1/3", "partition:2/3"
        }
        assert all(span.attrs["algorithm"] == "tcsm-eve" for span in spans)
        # Per-slice match counts annotated on the spans sum to the merge.
        assert sum(span.attrs["matches"] for span in spans) == (
            outcome.stats.matches
        )

    def test_single_worker_run_has_no_partition_span(self, prepared_eve):
        from repro.obs import Tracer

        tracer = Tracer()
        with QueryExecutor(max_workers=4) as executor:
            executor.run_matcher(prepared_eve, workers=1, tracer=tracer)
        assert list(tracer.iter_spans("partition")) == []

    def test_untraced_run_records_nothing(self, prepared_eve):
        with QueryExecutor(max_workers=2) as executor:
            outcome = executor.run_matcher(prepared_eve, workers=2)
        assert outcome.stats.matches > 0  # NULL_TRACER path still works


class TestDeadlineConsistency:
    """Partitioned runs under a deadline agree on the timed-out verdict."""

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_expired_deadline_consistent_across_fanouts(
        self, prepared_eve, workers
    ):
        with QueryExecutor(max_workers=4) as executor:
            outcome = executor.run_matcher(
                prepared_eve, deadline=0.0, workers=workers
            )
        assert outcome.stats.deadline_hit
        assert outcome.stats.budget_exhausted
        assert outcome.matches == ()

    def test_generous_deadline_is_not_reported_as_timeout(self, prepared_eve):
        import time as _time

        with QueryExecutor(max_workers=2) as executor:
            outcome = executor.run_matcher(
                prepared_eve, deadline=_time.monotonic() + 60.0, workers=2
            )
        assert not outcome.stats.deadline_hit
        assert not outcome.stats.budget_exhausted
        assert outcome.stats.matches > 0

    def test_filter_counters_survive_partition_merge(self, prepared_eve):
        with QueryExecutor(max_workers=3) as executor:
            solo = executor.run_matcher(prepared_eve, workers=1)
            fanned = executor.run_matcher(prepared_eve, workers=3)
        assert solo.stats.filter_summary().keys() == (
            fanned.stats.filter_summary().keys()
        )
        for name, row in fanned.stats.filter_summary().items():
            assert row["considered"] == (
                solo.stats.filters[name].considered
            ), name


class TestProcessExecution:
    def test_single_worker_runs_inline(self, toy):
        query, tc, graph, _, _ = toy
        reference = find_matches(query, tc, graph, algorithm="tcsm-eve")
        spec = ProcessSpec(
            query=query, constraints=tc, graph=graph, algorithm="tcsm-eve"
        )
        with QueryExecutor(max_workers=4, pool="process") as executor:
            outcome = executor.run_process(spec, workers=1)
        assert outcome.partitions == 1
        assert sorted(outcome.matches) == sorted(reference.matches)

    def test_fanned_out_processes_match_single_worker(self, toy):
        query, tc, graph, _, _ = toy
        reference = find_matches(query, tc, graph, algorithm="tcsm-eve")
        spec = ProcessSpec(
            query=query, constraints=tc, graph=graph, algorithm="tcsm-eve"
        )
        with QueryExecutor(max_workers=2, pool="process") as executor:
            outcome = executor.run_process(spec, workers=2)
        assert outcome.partitions == 2
        assert sorted(outcome.matches) == sorted(reference.matches)
