"""End-to-end tests for TCSMService and the JSONL stdio server."""

import io
import json

import pytest

from repro.errors import (
    AdmissionError,
    UnknownAlgorithmError,
    UnknownGraphError,
)
from repro.graphs import pattern_to_dict, save_snap_temporal
from repro.service import ServiceConfig, TCSMService, serve_stdio


@pytest.fixture()
def service(cm_graph):
    with TCSMService(ServiceConfig(max_workers=2)) as svc:
        svc.load_graph("cm", cm_graph)
        yield svc


class TestQueryPath:
    def test_cold_query_misses_both_caches(self, service, workload):
        query, constraints = workload
        result = service.query("cm", query, constraints)
        assert result.plan_cache == "miss"
        assert result.result_cache == "miss"
        assert result.algorithm == "tcsm-eve"
        assert result.match_count == len(result.matches)
        assert result.build_seconds > 0.0

    def test_repeat_query_hits_result_cache(self, service, workload):
        query, constraints = workload
        cold = service.query("cm", query, constraints)
        warm = service.query("cm", query, constraints)
        assert warm.result_cache == "hit"
        assert warm.matches == cold.matches
        assert service.metrics.counter("result_cache_hits") == 1

    def test_result_cache_bypass_still_hits_plan_cache(
        self, service, workload
    ):
        query, constraints = workload
        cold = service.query("cm", query, constraints, use_result_cache=False)
        warm = service.query("cm", query, constraints, use_result_cache=False)
        assert cold.plan_cache == "miss"
        assert warm.plan_cache == "hit"
        assert warm.result_cache == "bypass"
        assert warm.build_seconds == 0.0
        assert warm.matches == cold.matches

    def test_unknown_graph_raises(self, service, workload):
        query, constraints = workload
        with pytest.raises(UnknownGraphError, match="cm"):
            service.query("ghost", query, constraints)

    def test_unknown_algorithm_raises(self, service, workload):
        query, constraints = workload
        with pytest.raises(UnknownAlgorithmError):
            service.query("cm", query, constraints, algorithm="nope")

    def test_zero_budget_times_out_and_is_not_cached(
        self, service, workload
    ):
        query, constraints = workload
        timed = service.query("cm", query, constraints, time_budget=0.0)
        assert timed.timed_out
        assert not timed.truncated
        after = service.query("cm", query, constraints, time_budget=0.0)
        assert after.result_cache == "miss"  # partial results never cached
        assert service.metrics.counter("queries_timed_out") == 2

    def test_match_limit_marks_truncated(self, service, workload):
        query, constraints = workload
        result = service.query("cm", query, constraints, limit=1)
        assert result.truncated
        assert not result.timed_out
        assert result.match_count == 1

    def test_count_only_skips_match_payloads(self, service, workload):
        query, constraints = workload
        counted = service.query(
            "cm", query, constraints, collect_matches=False
        )
        full = service.query("cm", query, constraints)
        assert counted.matches == ()
        assert counted.match_count == full.match_count

    def test_partitioned_query_agrees_with_solo(self, service, workload):
        query, constraints = workload
        solo = service.query(
            "cm", query, constraints, workers=1, use_result_cache=False
        )
        fanned = service.query(
            "cm", query, constraints, workers=2, use_result_cache=False
        )
        assert fanned.partitions == 2
        assert sorted(fanned.matches) == sorted(solo.matches)


class TestGraphLifecycle:
    def test_reload_bumps_version_and_invalidates_results(
        self, service, cm_graph, workload
    ):
        query, constraints = workload
        before = service.query("cm", query, constraints)
        service.load_graph("cm", cm_graph)
        after = service.query("cm", query, constraints)
        assert after.graph_version == before.graph_version + 1
        assert after.result_cache == "miss"

    def test_drop_graph_unregisters_and_evicts(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints)
        service.drop_graph("cm")
        assert len(service.results) == 0
        assert len(service.plans) == 0
        with pytest.raises(UnknownGraphError):
            service.query("cm", query, constraints)

    def test_load_graph_file(self, cm_graph, tmp_path, workload):
        path = tmp_path / "cm.txt"
        save_snap_temporal(cm_graph, path)
        query, constraints = workload
        with TCSMService() as svc:
            handle = svc.load_graph_file("disk", str(path))
            assert handle.version == 1
            result = svc.query("disk", query, constraints)
        assert result.graph == "disk"


class TestAdmissionControl:
    def test_zero_inflight_rejects_everything(self, cm_graph, workload):
        query, constraints = workload
        with TCSMService(ServiceConfig(max_inflight=0)) as svc:
            svc.load_graph("cm", cm_graph)
            with pytest.raises(AdmissionError, match="in-flight"):
                svc.query("cm", query, constraints)
            assert svc.metrics.counter("queries_rejected") == 1
            assert svc.inflight == 0

    def test_inflight_released_after_errors(self, service, workload):
        query, constraints = workload
        with pytest.raises(UnknownGraphError):
            service.query("ghost", query, constraints)
        assert service.inflight == 0


class TestPlanKnob:
    def test_cost_plan_returns_the_same_matches(self, service, workload):
        query, constraints = workload
        paper = service.query("cm", query, constraints)
        cost = service.query("cm", query, constraints, plan="cost")
        assert sorted(cost.matches) == sorted(paper.matches)
        assert cost.match_count == paper.match_count

    def test_plans_cache_separately(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints, use_result_cache=False)
        cold_cost = service.query(
            "cm", query, constraints, plan="cost", use_result_cache=False
        )
        warm_cost = service.query(
            "cm", query, constraints, plan="cost", use_result_cache=False
        )
        # The cost plan is keyed apart from the paper plan it rode after,
        # and hits its own entry on repeat.
        assert cold_cost.plan_cache == "miss"
        assert warm_cost.plan_cache == "hit"
        assert len(service.plans) == 2

    def test_unknown_plan_is_an_error_response(self, service, workload):
        query, constraints = workload
        response = service.submit(
            {
                "op": "query",
                "graph": "cm",
                "pattern": pattern_to_dict(query, constraints),
                "plan": "bogus",
            }
        )
        assert response["status"] == "error"
        assert "unknown plan" in response["error"]

    def test_plan_request_key_round_trips(self, service, workload):
        query, constraints = workload
        response = service.submit(
            {
                "op": "query",
                "graph": "cm",
                "pattern": pattern_to_dict(query, constraints),
                "plan": "cost",
                "count_only": True,
            }
        )
        assert response["status"] == "ok"
        assert response["match_count"] >= 0

    def test_timestamp_counters_metered(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints)
        counters = service.metrics_snapshot()["counters"]
        assert "timestamps_expanded" in counters
        assert "timestamps_skipped" in counters


class TestMetricsSnapshot:
    def test_snapshot_shape(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints)
        service.query("cm", query, constraints)
        snap = service.metrics_snapshot()
        assert snap["counters"]["queries_total"] == 2
        assert "tcsm-eve" in snap["qps"]
        assert snap["qps"]["tcsm-eve"] > 0.0
        assert snap["graphs"][0]["name"] == "cm"
        assert snap["plan_cache_entries"] == 1
        assert snap["result_cache_entries"] == 1
        assert snap["inflight"] == 0
        assert "match_seconds" in snap["histograms"]


class TestSubmit:
    def _query_request(self, workload, **extra):
        query, constraints = workload
        return {
            "op": "query",
            "graph": "cm",
            "pattern": pattern_to_dict(query, constraints),
            **extra,
        }

    def test_query_request_round_trip(self, service, workload):
        response = service.submit(
            self._query_request(workload, id="q-1", limit=2)
        )
        assert response["status"] == "ok"
        assert response["id"] == "q-1"
        assert response["op"] == "query"
        assert response["match_count"] <= 2
        assert all(
            set(m) == {"vertices", "edges"} for m in response["matches"]
        )

    def test_count_only_request_omits_matches(self, service, workload):
        response = service.submit(
            self._query_request(workload, count_only=True)
        )
        assert response["status"] == "ok"
        assert "matches" not in response
        assert response["match_count"] >= 0

    def test_pattern_path_request(self, service, workload, tmp_path):
        from repro.graphs import save_pattern

        query, constraints = workload
        path = tmp_path / "pattern.json"
        save_pattern(query, constraints, path)
        response = service.submit(
            {"op": "query", "graph": "cm", "pattern_path": str(path)}
        )
        assert response["status"] == "ok"

    def test_query_without_pattern_is_bad_request(self, service):
        response = service.submit({"op": "query", "graph": "cm"})
        assert response["status"] == "error"
        assert "pattern" in response["error"]

    def test_unknown_graph_is_error_not_crash(self, service, workload):
        response = service.submit(
            {**self._query_request(workload), "graph": "ghost"}
        )
        assert response["status"] == "error"
        assert "unknown graph" in response["error"]

    def test_rejected_when_overloaded(self, cm_graph, workload):
        with TCSMService(ServiceConfig(max_inflight=0)) as svc:
            svc.load_graph("cm", cm_graph)
            response = svc.submit(self._query_request(workload))
        assert response["status"] == "rejected"

    def test_unknown_op_is_bad_request(self, service):
        response = service.submit({"op": "explode", "id": 7})
        assert response["status"] == "error"
        assert response["id"] == 7

    def test_ping_graphs_metrics_ops(self, service):
        assert service.submit({"op": "ping"})["pong"] is True
        graphs = service.submit({"op": "graphs"})["graphs"]
        assert graphs[0]["name"] == "cm"
        assert "counters" in service.submit({"op": "metrics"})["metrics"]

    def test_load_and_drop_graph_ops(self, service, cm_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_snap_temporal(cm_graph, path)
        loaded = service.submit(
            {"op": "load_graph", "name": "disk", "path": str(path)}
        )
        assert loaded["status"] == "ok"
        assert loaded["graph"]["name"] == "disk"
        dropped = service.submit({"op": "drop_graph", "name": "disk"})
        assert dropped["status"] == "ok"
        assert "disk" not in service.graphs.names()


class TestServeStdio:
    def test_serves_until_shutdown(self, service, workload):
        query, constraints = workload
        lines = [
            json.dumps({"op": "ping", "id": 1}),
            "",  # blank lines are skipped, not answered
            "not json at all",
            json.dumps({"op": "query", "graph": "cm",
                        "pattern": pattern_to_dict(query, constraints),
                        "count_only": True}),
            json.dumps({"op": "shutdown"}),
            json.dumps({"op": "ping", "id": "after"}),  # never reached
        ]
        out = io.StringIO()
        served = serve_stdio(service, io.StringIO("\n".join(lines)), out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 4
        assert len(responses) == 4
        assert responses[0] == {"op": "ping", "id": 1, "status": "ok",
                                "pong": True}
        assert responses[1]["status"] == "error"
        assert "invalid request line" in responses[1]["error"]
        assert responses[2]["status"] == "ok"
        assert responses[3] == {"op": "shutdown", "status": "ok"}

    def test_non_object_request_is_error(self, service):
        out = io.StringIO()
        serve_stdio(service, io.StringIO('[1, 2, 3]\n'), out)
        response = json.loads(out.getvalue())
        assert response["status"] == "error"

    def test_eof_without_shutdown_returns(self, service):
        out = io.StringIO()
        served = serve_stdio(
            service, io.StringIO(json.dumps({"op": "ping"}) + "\n"), out
        )
        assert served == 1
