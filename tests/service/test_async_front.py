"""The asyncio front door: fairness, backpressure, ordered JSONL."""

import asyncio
import io
import json
import threading

import pytest

from repro.errors import ServiceError
from repro.service import (
    AsyncFrontConfig,
    AsyncFrontDoor,
    ServiceConfig,
    TCSMService,
    serve_stdio_async,
)


class GatedService:
    """submit() blocks until released; records processing order."""

    def __init__(self):
        self.gate = threading.Event()
        self.order = []

    def submit(self, request):
        self.gate.wait(10)
        self.order.append(request.get("tenant", "default"))
        return {"op": request.get("op", "query"), "status": "ok"}


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_batch": 0},
            {"workers": 0},
        ],
    )
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            AsyncFrontConfig(**kwargs)

    def test_submit_before_start_is_an_error(self):
        front = AsyncFrontDoor(GatedService())

        async def scenario():
            with pytest.raises(ServiceError, match="not started"):
                await front.submit({"op": "ping"})

        asyncio.run(scenario())


class TestFairScheduling:
    def test_flooding_tenant_cannot_starve_a_light_one(self):
        fake = GatedService()
        config = AsyncFrontConfig(
            max_batch=1, workers=1, max_queue_depth=100
        )

        async def scenario():
            async with AsyncFrontDoor(fake, config) as front:
                tasks = [
                    asyncio.create_task(
                        front.submit({"op": "ping", "tenant": "flood"})
                    )
                    for _ in range(8)
                ]
                await asyncio.sleep(0.05)
                tasks += [
                    asyncio.create_task(
                        front.submit({"op": "ping", "tenant": "light"})
                    )
                    for _ in range(3)
                ]
                await asyncio.sleep(0.05)
                fake.gate.set()
                await asyncio.gather(*tasks)

        asyncio.run(scenario())
        # Round-robin admission: the light tenant's first request is
        # served within a couple of slots of joining, not after the
        # whole flood.
        assert fake.order.index("light") <= 3, fake.order
        # And its later requests interleave instead of trailing.
        assert fake.order[-1] == "flood" or "light" not in fake.order[-3:]


class TestBackpressure:
    def test_queue_full_sheds_with_structured_response(self):
        fake = GatedService()
        config = AsyncFrontConfig(max_batch=1, workers=1, max_queue_depth=2)

        async def scenario():
            async with AsyncFrontDoor(fake, config) as front:
                tasks = [
                    asyncio.create_task(
                        front.submit({"op": "ping", "id": i})
                    )
                    for i in range(8)
                ]
                await asyncio.sleep(0.05)
                fake.gate.set()
                return await asyncio.gather(*tasks)

        responses = asyncio.run(scenario())
        shed = [r for r in responses if r.get("shed")]
        served = [r for r in responses if r["status"] == "ok"]
        assert len(shed) + len(served) == 8
        assert shed, "overload never shed"
        assert served, "shedding rejected everything"
        for response in shed:
            assert response["status"] == "rejected"
            assert "queue full" in response["error"]
            assert "id" in response  # echoes the request id

    def test_stats_count_submissions_sheds_and_serves(self):
        fake = GatedService()
        config = AsyncFrontConfig(max_batch=2, workers=1, max_queue_depth=1)

        async def scenario():
            async with AsyncFrontDoor(fake, config) as front:
                tasks = [
                    asyncio.create_task(front.submit({"op": "ping"}))
                    for _ in range(5)
                ]
                await asyncio.sleep(0.05)
                fake.gate.set()
                await asyncio.gather(*tasks)
                return front.stats_snapshot()

        stats = asyncio.run(scenario())
        assert stats["submitted"] == 5
        assert stats["shed"] + stats["served"] == 5
        assert stats["shed"] == stats["shed_by_tenant"]["default"]
        assert stats["admitted"] == stats["served"]


class TestServeStdioAsync:
    def test_responses_come_back_in_request_order(self, cm_graph):
        with TCSMService(ServiceConfig(max_workers=2)) as service:
            service.load_graph("cm", cm_graph)
            lines = [
                json.dumps({"op": "ping", "id": i}) for i in range(10)
            ] + [json.dumps({"op": "shutdown", "id": 99})]
            out = io.StringIO()
            served = asyncio.run(
                serve_stdio_async(
                    service, io.StringIO("\n".join(lines) + "\n"), out
                )
            )
        responses = [json.loads(s) for s in out.getvalue().splitlines()]
        assert served == 11
        assert [r["id"] for r in responses] == list(range(10)) + [99]
        assert all(r["status"] == "ok" for r in responses)

    def test_error_lines_are_answered_in_place(self, cm_graph):
        with TCSMService(ServiceConfig(max_workers=2)) as service:
            service.load_graph("cm", cm_graph)
            lines = [
                json.dumps({"op": "ping", "id": 0}),
                "{broken json",
                json.dumps({"op": "ping", "id": 2}),
            ]
            out = io.StringIO()
            served = asyncio.run(
                serve_stdio_async(
                    service, io.StringIO("\n".join(lines) + "\n"), out
                )
            )
        responses = [json.loads(s) for s in out.getvalue().splitlines()]
        assert served == 3
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "error"
        assert "invalid request line" in responses[1]["error"]
        assert responses[2]["status"] == "ok"
