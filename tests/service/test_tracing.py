"""Service-side tracing: sampler, trace store, and the traced query path."""

import json

import pytest

from repro.service import ServiceConfig, TCSMService, TraceSampler, TraceStore


class TestTraceSampler:
    @pytest.mark.parametrize("rate", (-0.1, 1.5))
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            TraceSampler(rate)

    def test_zero_never_samples(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.should_sample() for _ in range(100))

    def test_one_always_samples(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.should_sample() for _ in range(100))

    @pytest.mark.parametrize("rate,expected", [(0.5, 50), (0.25, 25), (0.1, 10)])
    def test_fraction_is_exact_and_deterministic(self, rate, expected):
        one, two = TraceSampler(rate), TraceSampler(rate)
        first = [one.should_sample() for _ in range(100)]
        second = [two.should_sample() for _ in range(100)]
        assert first == second  # counter-based, no randomness
        assert sum(first) == expected

    def test_samples_are_spread_not_clustered(self):
        sampler = TraceSampler(0.25)
        decisions = [sampler.should_sample() for _ in range(100)]
        # Counter-based sampling picks every 4th query, never neighbours.
        assert not any(a and b for a, b in zip(decisions, decisions[1:]))


class TestTraceStore:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            TraceStore(capacity=0)

    def test_ids_are_monotonic_and_unique(self):
        store = TraceStore()
        ids = [store.next_trace_id() for _ in range(3)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_put_get_roundtrip(self):
        store = TraceStore()
        store.put("trace-000001", {"tree": "x"})
        assert store.get("trace-000001") == {"tree": "x"}
        assert store.get("trace-999999") is None

    def test_lru_eviction_respects_recency(self):
        store = TraceStore(capacity=2)
        store.put("a", {})
        store.put("b", {})
        store.get("a")  # refresh: b becomes least recently used
        store.put("c", {})
        assert store.get("b") is None
        assert store.get("a") is not None  # this get refreshes "a" again
        assert store.ids() == ["c", "a"]
        assert len(store) == 2


@pytest.fixture()
def service(cm_graph):
    with TCSMService(ServiceConfig(max_workers=2)) as svc:
        svc.load_graph("cm", cm_graph)
        yield svc


class TestTracedQueries:
    def test_untraced_by_default(self, service, workload):
        query, constraints = workload
        result = service.query("cm", query, constraints)
        assert result.trace_id is None
        assert len(service.traces) == 0

    def test_trace_flag_returns_resolvable_trace_id(self, service, workload):
        query, constraints = workload
        result = service.query("cm", query, constraints, trace=True)
        assert result.trace_id is not None
        payload = service.traces.get(result.trace_id)
        assert payload is not None
        assert payload["graph"] == "cm"
        assert payload["algorithm"] == "tcsm-eve"
        names = {e["name"] for e in payload["chrome"]["traceEvents"]}
        assert {"prepare", "enumerate"} <= names
        assert any(n.startswith("candidate-filter:") for n in names)
        assert "prepare" in payload["tree"]
        json.dumps(payload)  # the whole payload is JSONL-safe

    def test_fanned_out_traced_query_records_partition_spans(
        self, service, workload
    ):
        query, constraints = workload
        result = service.query(
            "cm", query, constraints, workers=2, trace=True
        )
        payload = service.traces.get(result.trace_id)
        partition_events = [
            e for e in payload["chrome"]["traceEvents"]
            if e["name"].startswith("partition:")
        ]
        assert {e["name"] for e in partition_events} == {
            "partition:0/2", "partition:1/2"
        }

    def test_traced_queries_bypass_the_result_cache(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints)  # warms the cache
        traced = service.query("cm", query, constraints, trace=True)
        assert traced.result_cache == "miss"  # no read ...
        after = service.query("cm", query, constraints, trace=True)
        assert after.result_cache == "miss"  # ... and no write
        assert after.trace_id != traced.trace_id
        untraced = service.query("cm", query, constraints)
        assert untraced.result_cache == "hit"  # plain queries still hit

    def test_sampled_tracing_follows_the_configured_rate(self, cm_graph, workload):
        query, constraints = workload
        config = ServiceConfig(max_workers=1, trace_sample_rate=0.5)
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            results = [
                svc.query("cm", query, constraints, use_result_cache=False)
                for _ in range(4)
            ]
            traced = [r for r in results if r.trace_id is not None]
            assert len(traced) == 2
            assert len(svc.traces) == 2

    def test_trace_metrics_are_metered(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints, trace=True)
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["queries_traced"] == 1
        assert snapshot["trace_store_entries"] == 1
        assert any(
            name.startswith("span_seconds.") for name in snapshot["histograms"]
        )

    def test_filter_counters_reach_the_metrics(self, service, workload):
        query, constraints = workload
        service.query("cm", query, constraints)
        counters = service.metrics_snapshot()["counters"]
        considered = {
            name: value for name, value in counters.items()
            if name.startswith("filter_considered.")
        }
        assert considered  # per-filter counters exported
        assert all(value > 0 for value in considered.values())
        assert "filter_considered.ldf" in considered


class TestTraceOp:
    def test_trace_op_lists_and_fetches(self, service, workload):
        query, constraints = workload
        response = service.submit({
            "op": "query", "graph": "cm",
            "pattern": _pattern_dict(workload), "trace": True,
        })
        assert response["status"] == "ok"
        trace_id = response["trace_id"]
        listing = service.submit({"op": "trace"})
        assert listing["status"] == "ok"
        assert trace_id in listing["traces"]
        fetched = service.submit({"op": "trace", "trace_id": trace_id})
        assert fetched["status"] == "ok"
        assert fetched["trace"]["trace_id"] == trace_id
        assert fetched["trace"]["chrome"]["traceEvents"]

    def test_unknown_trace_id_is_an_error_response(self, service):
        response = service.submit({"op": "trace", "trace_id": "trace-nope"})
        assert response["status"] == "error"
        assert "trace-nope" in response["error"]

    def test_untraced_query_response_has_no_trace_id(self, service, workload):
        response = service.submit({
            "op": "query", "graph": "cm",
            "pattern": _pattern_dict(workload), "count_only": True,
        })
        assert response["status"] == "ok"
        assert "trace_id" not in response


def _pattern_dict(workload):
    from repro.graphs import pattern_to_dict

    query, constraints = workload
    return pattern_to_dict(query, constraints)
