"""Determinism guard: partitioned fan-out never changes the answer.

Partitions slice only the *root* seed position, are pairwise disjoint and
jointly exhaustive — so the merged multiset must equal the single-worker
multiset exactly (same matches, same multiplicities) for every TCSM
algorithm, every worker count, and both datasets.  Any divergence here
means parallel serving silently corrupts results, which is why this file
pins the exact multiset rather than just the count.
"""

from collections import Counter

import pytest

from repro.core import create_matcher
from repro.service import QueryExecutor

TCSM_ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
WORKER_COUNTS = (2, 3, 5)


def _multiset(matches):
    return Counter(matches)


@pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_toy_fanout_preserves_multiset(toy, algorithm, workers):
    query, tc, graph, _, _ = toy
    matcher = create_matcher(algorithm, query, tc, graph)
    matcher.prepare()
    with QueryExecutor(max_workers=max(WORKER_COUNTS)) as executor:
        solo = executor.run_matcher(matcher, workers=1)
        fanned = executor.run_matcher(matcher, workers=workers)
    assert fanned.partitions == workers
    assert _multiset(fanned.matches) == _multiset(solo.matches)
    assert fanned.stats.matches == solo.stats.matches


@pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
def test_synthetic_fanout_preserves_multiset(cm_graph, workload, algorithm):
    query, constraints = workload
    matcher = create_matcher(algorithm, query, constraints, cm_graph)
    matcher.prepare()
    with QueryExecutor(max_workers=4) as executor:
        solo = executor.run_matcher(matcher, workers=1)
        fanned = executor.run_matcher(matcher, workers=4)
    assert _multiset(fanned.matches) == _multiset(solo.matches)


@pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
def test_more_partitions_than_roots_still_exact(toy, algorithm):
    """Worker counts beyond the root-candidate count leave some
    partitions empty; the merged answer must be unaffected."""
    query, tc, graph, _, _ = toy
    matcher = create_matcher(algorithm, query, tc, graph)
    matcher.prepare()
    with QueryExecutor(max_workers=16) as executor:
        solo = executor.run_matcher(matcher, workers=1)
        fanned = executor.run_matcher(matcher, workers=16)
    assert _multiset(fanned.matches) == _multiset(solo.matches)
