"""Lifecycle of the fork-inherited process spec (the epoch guard).

``_PROCESS_SPEC`` is a module global so forked workers inherit the
query spec without pickling the graph.  That makes its lifecycle a
correctness surface: a spec that outlives its fan-out must never be
runnable (stale reads would silently answer the *previous* query), and
a closed executor must leave nothing behind for the next fork to
inherit.
"""

import pytest

from repro.service import ProcessSpec, QueryExecutor
from repro.service import executor as executor_module


@pytest.fixture()
def spec(toy):
    query, tc, graph, _, _ = toy
    return ProcessSpec(
        query=query,
        constraints=tc,
        graph=graph.freeze(),
        algorithm="tcsm-eve",
        options={},
    )


class TestEpochGuard:
    def test_worker_rejects_missing_spec(self):
        executor_module._set_process_spec(
            None, next(executor_module._EPOCH_COUNTER)
        )
        with pytest.raises(RuntimeError, match="stale or missing"):
            executor_module._run_partition_in_process(0, 1, epoch=10**9)

    def test_worker_rejects_stale_epoch(self, spec):
        epoch = next(executor_module._EPOCH_COUNTER)
        executor_module._set_process_spec(spec, epoch)
        try:
            with pytest.raises(RuntimeError, match="stale"):
                executor_module._run_partition_in_process(
                    0, 1, epoch=epoch + 1
                )
        finally:
            executor_module._set_process_spec(
                None, next(executor_module._EPOCH_COUNTER)
            )

    def test_worker_runs_with_current_epoch(self, spec):
        epoch = next(executor_module._EPOCH_COUNTER)
        executor_module._set_process_spec(spec, epoch)
        try:
            matches, stats, compiles, owned = (
                executor_module._run_partition_in_process(0, 1, epoch)
            )
        finally:
            executor_module._set_process_spec(
                None, next(executor_module._EPOCH_COUNTER)
            )
        assert stats.matches == len(matches) == 2
        assert compiles == 0  # the spec ships a pre-compiled snapshot
        assert owned > 0  # plain snapshot: the worker owns its buffers


class TestSpecCleared:
    def test_fanout_clears_spec_on_completion(self, spec):
        with QueryExecutor(max_workers=2, pool="process") as executor:
            outcome = executor.run_process(spec, workers=2)
            assert outcome.stats.matches == 2
            assert executor_module._PROCESS_SPEC is None

    def test_close_clears_spec(self, spec):
        executor = QueryExecutor(max_workers=2, pool="process")
        executor_module._set_process_spec(
            spec, next(executor_module._EPOCH_COUNTER)
        )
        executor.close()
        assert executor_module._PROCESS_SPEC is None
