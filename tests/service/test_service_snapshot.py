"""Service-layer snapshot guarantees: compile-once, fingerprinted keys,
and edge-labeled matching end to end through the serving stack.

The registry compiles one CSR snapshot per ``(graph, version)`` at
registration; every later stage — plan preparation, partitioned thread
fan-out, process-pool shipping — consumes that frozen snapshot and never
triggers a recompile.  The process-wide
:func:`repro.graphs.snapshot_compile_count` probe pins it.
"""

import pytest

from repro.core import find_matches
from repro.graphs import (
    GraphSnapshot,
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
    snapshot_compile_count,
)
from repro.service import (
    GraphRegistry,
    ProcessSpec,
    QueryExecutor,
    ServiceConfig,
    TCSMService,
)


@pytest.fixture
def labeled_workload():
    """Edge-labeled wire→cash chain query plus a data graph with decoys."""
    qb = QueryBuilder()
    qb.vertex("a", "acct").vertex("b", "acct").vertex("c", "acct")
    qb.edge("a", "b", label="wire")
    qb.edge("b", "c", label="cash")
    query, _ = qb.build()
    constraints = TemporalConstraints([(0, 1, 10)], num_edges=2)

    gb = TemporalGraphBuilder()
    for name in ("p", "q", "r", "s", "t"):
        gb.vertex(name, "acct")
    gb.edge("p", "q", 1, label="wire")
    gb.edge("q", "r", 2, label="cash")
    gb.edge("q", "r", 3, label="wire")  # wrong label decoy
    gb.edge("r", "s", 4, label="wire")
    gb.edge("s", "t", 5, label="cash")
    gb.edge("t", "p", 6, label="cash")
    gb.edge("p", "s", 7)  # unlabeled decoy
    graph, _ = gb.build()
    return query, constraints, graph


class TestCompileOnce:
    def test_registry_compiles_exactly_once(self, labeled_workload):
        _, _, graph = labeled_workload
        registry = GraphRegistry()
        before = snapshot_compile_count()
        handle = registry.register("ledger", graph)
        assert snapshot_compile_count() == before + 1
        assert isinstance(handle.snapshot, GraphSnapshot)
        # Re-registering the same object bumps the version but reuses
        # the cached freeze — no second compile.
        again = registry.register("ledger", graph)
        assert again.version == handle.version + 1
        assert again.snapshot is handle.snapshot
        assert snapshot_compile_count() == before + 1

    def test_serving_never_recompiles(self, labeled_workload):
        query, constraints, graph = labeled_workload
        with TCSMService(ServiceConfig(max_workers=3)) as svc:
            svc.load_graph("ledger", graph)
            before = snapshot_compile_count()
            for algorithm in ("tcsm-eve", "tcsm-v2v", "ri-ds"):
                for workers in (1, 3):
                    svc.query(
                        "ledger",
                        query,
                        constraints,
                        algorithm=algorithm,
                        workers=workers,
                        use_result_cache=False,
                    )
            assert snapshot_compile_count() == before

    def test_describe_exposes_fingerprint(self, labeled_workload):
        _, _, graph = labeled_workload
        registry = GraphRegistry()
        handle = registry.register("ledger", graph)
        assert handle.describe()["fingerprint"] == handle.snapshot.fingerprint


class TestEdgeLabeledServicePath:
    """Registry → partitioned executor → merge, with edge labels live."""

    def test_results_match_direct_engine_run(self, labeled_workload):
        query, constraints, graph = labeled_workload
        reference = find_matches(query, constraints, graph)
        assert len(reference.matches) >= 1  # planted chain is found
        with TCSMService(ServiceConfig(max_workers=3)) as svc:
            svc.load_graph("ledger", graph)
            solo = svc.query("ledger", query, constraints, workers=1)
            fanned = svc.query(
                "ledger",
                query,
                constraints,
                workers=3,
                use_result_cache=False,
            )
        assert solo.matches == tuple(reference.matches)
        assert sorted(fanned.matches) == sorted(reference.matches)

    def test_labels_constrain_matches_through_service(self, labeled_workload):
        query, constraints, graph = labeled_workload
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            svc.load_graph("ledger", graph)
            result = svc.query("ledger", query, constraints)
        for match in result.matches:
            assert graph.edge_label(*match.edge_map[0]) == "wire"
            assert graph.edge_label(*match.edge_map[1]) == "cash"

    def test_result_cache_hit_after_partitioned_run(self, labeled_workload):
        query, constraints, graph = labeled_workload
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            svc.load_graph("ledger", graph)
            cold = svc.query("ledger", query, constraints, workers=2)
            warm = svc.query("ledger", query, constraints, workers=2)
        assert cold.result_cache == "miss"
        assert warm.result_cache == "hit"
        assert warm.matches == cold.matches


class TestProcessPoolShipsSnapshot:
    def test_spec_with_snapshot_round_trips_workers(self, labeled_workload):
        query, constraints, graph = labeled_workload
        reference = find_matches(query, constraints, graph)
        spec = ProcessSpec(
            query=query,
            constraints=constraints,
            graph=graph.freeze(),  # what the server ships: the snapshot
            algorithm="tcsm-eve",
        )
        with QueryExecutor(max_workers=2, pool="process") as executor:
            outcome = executor.run_process(spec, workers=2)
        assert outcome.partitions == 2
        assert sorted(outcome.matches) == sorted(reference.matches)

    def test_process_pool_service_uses_snapshot(self, labeled_workload):
        query, constraints, graph = labeled_workload
        reference = find_matches(query, constraints, graph)
        config = ServiceConfig(max_workers=2, pool="process")
        with TCSMService(config) as svc:
            svc.load_graph("ledger", graph)
            before = snapshot_compile_count()
            result = svc.query(
                "ledger", query, constraints, workers=2
            )
            assert snapshot_compile_count() == before
        assert sorted(result.matches) == sorted(reference.matches)
