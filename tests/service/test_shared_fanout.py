"""Shared-memory fan-out: zero per-worker compiles, one graph in RAM.

The acceptance bars for the shm snapshot plumbing, asserted end to end
through the service:

* a K-worker process fan-out answers with ``worker_compiles == (0,)*K``
  (workers attach, they never recompile) and ``worker_graph_bytes ==
  (0,)*K`` (workers own no CSR copies — the segment is the only copy);
* total graph memory is one segment within 1.3x of a single snapshot,
  not K copies;
* the partitioned multiset is exactly the single-threaded answer for
  every partition strategy and every TCSM algorithm.
"""

import pytest

from repro.service import ServiceConfig, TCSMService

WORKERS = 4
TCSM = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
STRATEGIES = ("stride", "range", "label")


@pytest.fixture(scope="module")
def shared_service(cm_graph):
    config = ServiceConfig(
        max_workers=WORKERS, pool="process", share_snapshots=True
    )
    with TCSMService(config) as svc:
        svc.load_graph("cm", cm_graph)
        yield svc


class TestSharedSegmentLifecycle:
    def test_registration_exports_one_segment(self, shared_service):
        handle = shared_service.graphs.get("cm")
        assert handle.shared is not None
        assert handle.shared.name
        described = handle.describe()
        assert described["shared_segment"] == handle.shared.name

    def test_segment_memory_within_1_3x_of_one_snapshot(
        self, shared_service
    ):
        handle = shared_service.graphs.get("cm")
        assert handle.shared.nbytes <= 1.3 * handle.snapshot.nbytes

    def test_drop_releases_the_segment(self, cm_graph):
        config = ServiceConfig(
            max_workers=2, pool="process", share_snapshots=True
        )
        with TCSMService(config) as svc:
            handle = svc.load_graph("g", cm_graph)
            shared = handle.shared
            assert shared.refcount == 1
            svc.drop_graph("g")
            assert shared.refcount == 0

    def test_thread_pool_does_not_export(self, cm_graph):
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            handle = svc.load_graph("g", cm_graph)
            assert handle.shared is None


class TestZeroCopyFanOut:
    @pytest.mark.parametrize("algo", TCSM)
    def test_workers_attach_instead_of_compiling(
        self, shared_service, workload, algo
    ):
        query, constraints = workload
        result = shared_service.query(
            "cm",
            query,
            constraints,
            algorithm=algo,
            workers=WORKERS,
            use_result_cache=False,
        )
        assert result.partitions == WORKERS
        assert result.worker_compiles == (0,) * WORKERS
        assert result.worker_graph_bytes == (0,) * WORKERS

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_matches_the_solo_answer(
        self, shared_service, workload, strategy
    ):
        query, constraints = workload
        solo = shared_service.query(
            "cm", query, constraints, workers=1, use_result_cache=False
        )
        fanned = shared_service.query(
            "cm",
            query,
            constraints,
            workers=WORKERS,
            partition_strategy=strategy,
            use_result_cache=False,
        )
        assert sorted(fanned.matches) == sorted(solo.matches)
        assert fanned.worker_compiles == (0,) * WORKERS

    def test_result_dict_carries_worker_probes(
        self, shared_service, workload
    ):
        query, constraints = workload
        result = shared_service.query(
            "cm", query, constraints, workers=2, use_result_cache=False
        )
        payload = result.to_dict()
        assert payload["worker_compiles"] == [0, 0]
        assert payload["worker_graph_bytes"] == [0, 0]


class TestUnsharedFanOutStillWorks:
    def test_process_pool_without_sharing_ships_copies(
        self, cm_graph, workload
    ):
        # The counterfactual configuration: works, but every worker
        # deserialises its own CSR copy (nonzero owned bytes).
        query, constraints = workload
        config = ServiceConfig(
            max_workers=2, pool="process", share_snapshots=False
        )
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            solo = svc.query(
                "cm", query, constraints, workers=1, use_result_cache=False
            )
            fanned = svc.query(
                "cm", query, constraints, workers=2, use_result_cache=False
            )
            assert sorted(fanned.matches) == sorted(solo.matches)
            assert all(b > 0 for b in fanned.worker_graph_bytes)
