"""Tests for pattern fingerprints and the prepared-plan cache."""

import json
import threading

import pytest

from repro.graphs import TemporalConstraints, pattern_from_dict, pattern_to_dict
from repro.service import (
    CachedPlan,
    PlanCache,
    PlanKey,
    options_fingerprint,
    pattern_fingerprint,
)


def _key(pattern="p", graph="g", version=1, algorithm="tcsm-eve", options=""):
    return PlanKey(
        graph_name=graph,
        graph_version=version,
        graph_fingerprint=f"fp-{graph}-{version}",
        pattern=pattern,
        algorithm=algorithm,
        options=options,
    )


def _plan(key):
    return CachedPlan(key=key, matcher=object(), build_seconds=0.0)


class TestPatternFingerprint:
    def test_equal_patterns_hash_equal(self, workload):
        query, constraints = workload
        assert pattern_fingerprint(query, constraints) == pattern_fingerprint(
            query, constraints
        )

    def test_different_constraints_hash_differently(self, workload):
        query, constraints = workload
        loosened = TemporalConstraints(
            [(c.earlier, c.later, c.gap + 1) for c in constraints],
            num_edges=query.num_edges,
        )
        assert pattern_fingerprint(query, constraints) != pattern_fingerprint(
            query, loosened
        )

    def test_json_round_trip_preserves_fingerprint(self, workload):
        """A pattern submitted over JSONL (gaps coerced to float) must hit
        the same plan-cache entry as its native twin."""
        query, constraints = workload
        wire = json.loads(json.dumps(pattern_to_dict(query, constraints)))
        round_tripped_query, round_tripped_tc = pattern_from_dict(wire)
        assert pattern_fingerprint(
            round_tripped_query, round_tripped_tc
        ) == pattern_fingerprint(query, constraints)

    def test_fingerprint_is_hex_digest(self, workload):
        query, constraints = workload
        digest = pattern_fingerprint(query, constraints)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestOptionsFingerprint:
    def test_empty_options_are_empty_string(self):
        assert options_fingerprint({}) == ""

    def test_order_independent(self):
        assert options_fingerprint(
            {"a": 1, "b": True}
        ) == options_fingerprint({"b": True, "a": 1})

    def test_value_sensitive(self):
        assert options_fingerprint({"a": 1}) != options_fingerprint({"a": 2})


class TestPlanCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            PlanCache(capacity=0)

    def test_miss_returns_none(self):
        assert PlanCache().get(_key()) is None

    def test_get_or_build_builds_once(self):
        cache = PlanCache()
        key = _key()
        builds = []

        def build():
            builds.append(1)
            return _plan(key)

        plan, hit = cache.get_or_build(key, build)
        again, hit_again = cache.get_or_build(key, build)
        assert not hit and hit_again
        assert again is plan
        assert len(builds) == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        first, second, third = _key("p1"), _key("p2"), _key("p3")
        for key in (first, second):
            cache.get_or_build(key, lambda key=key: _plan(key))
        cache.get(first)  # refresh: second is now least recently used
        cache.get_or_build(third, lambda: _plan(third))
        assert cache.get(second) is None
        assert cache.get(first) is not None
        assert len(cache) == 2

    def test_invalidate_graph_keeps_current_version(self):
        cache = PlanCache()
        old, new, other = _key(version=1), _key(version=2), _key(graph="h")
        for key in (old, new, other):
            cache.get_or_build(key, lambda key=key: _plan(key))
        evicted = cache.invalidate_graph("g", keep_version=2)
        assert evicted == 1
        assert cache.get(old) is None
        assert cache.get(new) is not None
        assert cache.get(other) is not None

    def test_invalidate_graph_without_keep_drops_all_versions(self):
        cache = PlanCache()
        for version in (1, 2):
            key = _key(version=version)
            cache.get_or_build(key, lambda key=key: _plan(key))
        assert cache.invalidate_graph("g") == 2
        assert len(cache) == 0

    def test_clear(self):
        cache = PlanCache()
        cache.get_or_build(_key(), lambda: _plan(_key()))
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_same_key_builds_once(self):
        cache = PlanCache()
        key = _key()
        builds = []
        gate = threading.Barrier(4)

        def build():
            builds.append(1)
            return _plan(key)

        def racer():
            gate.wait()
            cache.get_or_build(key, build)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(builds) == 1
