"""Error paths of the JSONL protocol: structured responses, never
tracebacks.

Every malformed, incomplete, oversized, or stale request must come back
as a single JSON object with ``status`` set to ``error`` or
``rejected`` and a human-readable ``error`` string — and the server
must keep serving afterwards.  These tests pin that contract for both
the synchronous ``serve_stdio`` loop and the async front door, and for
``submit()`` called directly.
"""

import asyncio
import io
import json

import pytest

from repro.graphs import pattern_to_dict
from repro.service import ServiceConfig, TCSMService, serve_stdio
from repro.service.async_front import serve_stdio_async


@pytest.fixture()
def service(cm_graph):
    with TCSMService(ServiceConfig(max_workers=2)) as svc:
        svc.load_graph("cm", cm_graph)
        yield svc


def _query_request(workload, **extra):
    query, constraints = workload
    request = {
        "op": "query",
        "graph": "cm",
        "pattern": pattern_to_dict(query, constraints),
    }
    request.update(extra)
    return request


def _run_lines(service, lines):
    out = io.StringIO()
    served = serve_stdio(
        service, io.StringIO("\n".join(lines) + "\n"), out
    )
    return served, [json.loads(s) for s in out.getvalue().splitlines()]


def _assert_structured_error(response, status="error"):
    assert response["status"] == status
    assert isinstance(response["error"], str)
    assert "Traceback" not in response["error"]


class TestSubmitErrorPaths:
    def test_unknown_op_is_structured(self, service):
        response = service.submit({"op": "frobnicate"})
        _assert_structured_error(response)
        assert "unknown op" in response["error"]
        assert response["op"] == "frobnicate"

    def test_non_string_op_is_structured(self, service):
        response = service.submit({"op": 17})
        _assert_structured_error(response)

    def test_query_missing_graph_field(self, service, workload):
        request = _query_request(workload)
        del request["graph"]
        _assert_structured_error(service.submit(request))

    def test_query_missing_pattern_field(self, service):
        response = service.submit({"op": "query", "graph": "cm"})
        _assert_structured_error(response)
        assert "pattern" in response["error"]

    def test_query_with_malformed_pattern(self, service):
        response = service.submit(
            {"op": "query", "graph": "cm", "pattern": {"bogus": 1}}
        )
        _assert_structured_error(response)

    def test_query_with_non_numeric_limit(self, service, workload):
        response = service.submit(_query_request(workload, limit="many"))
        _assert_structured_error(response)

    def test_load_graph_missing_path(self, service):
        response = service.submit({"op": "load_graph", "name": "g"})
        _assert_structured_error(response)

    def test_drop_graph_missing_name(self, service):
        _assert_structured_error(service.submit({"op": "drop_graph"}))

    def test_unknown_trace_id(self, service):
        response = service.submit({"op": "trace", "trace_id": "nope"})
        _assert_structured_error(response)
        assert "unknown trace id" in response["error"]

    def test_query_after_drop_graph_is_error_not_crash(
        self, cm_graph, workload
    ):
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            svc.load_graph("cm", cm_graph)
            request = _query_request(workload)
            assert svc.submit(request)["status"] == "ok"
            assert svc.submit({"op": "drop_graph", "name": "cm"})[
                "status"
            ] == "ok"
            response = svc.submit(request)
            _assert_structured_error(response)
            assert "cm" in response["error"]
            # The service survives: unrelated ops keep working.
            assert svc.submit({"op": "ping"})["status"] == "ok"

    def test_error_response_echoes_request_id(self, service):
        response = service.submit({"op": "frobnicate", "id": "req-7"})
        assert response["id"] == "req-7"
        _assert_structured_error(response)


class TestServeStdioErrorPaths:
    def test_malformed_json_line(self, service):
        served, responses = _run_lines(
            service, ['{"op": "ping"}', "{not json", '{"op": "ping"}']
        )
        assert served == 3
        assert responses[0]["status"] == "ok"
        _assert_structured_error(responses[1])
        assert "invalid request line" in responses[1]["error"]
        assert responses[2]["status"] == "ok"

    def test_non_object_line(self, service):
        served, responses = _run_lines(service, ["[1, 2, 3]", '"ping"'])
        assert served == 2
        for response in responses:
            _assert_structured_error(response)
            assert "JSON object" in response["error"]

    def test_oversized_line_is_rejected_not_parsed(self, cm_graph):
        config = ServiceConfig(max_workers=2, max_request_bytes=256)
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            big = json.dumps({"op": "ping", "pad": "x" * 1024})
            served, responses = _run_lines(svc, [big, '{"op": "ping"}'])
        assert served == 2
        _assert_structured_error(responses[0])
        assert "max_request_bytes" in responses[0]["error"]
        assert responses[1]["status"] == "ok"

    def test_blank_lines_are_skipped_silently(self, service):
        served, responses = _run_lines(
            service, ["", '{"op": "ping"}', "   ", '{"op": "ping"}']
        )
        assert served == 2
        assert len(responses) == 2

    def test_query_after_drop_over_the_wire(self, cm_graph, workload):
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            svc.load_graph("cm", cm_graph)
            lines = [
                json.dumps(_query_request(workload, id=0)),
                json.dumps({"op": "drop_graph", "name": "cm", "id": 1}),
                json.dumps(_query_request(workload, id=2)),
                json.dumps({"op": "shutdown", "id": 3}),
            ]
            served, responses = _run_lines(svc, lines)
        assert served == 4
        assert [r["id"] for r in responses] == [0, 1, 2, 3]
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "ok"
        _assert_structured_error(responses[2])
        assert responses[3]["status"] == "ok"


class TestAsyncFrontErrorParity:
    """The async loop answers error paths with the same envelopes as the
    synchronous loop."""

    def _run_async(self, service, lines):
        out = io.StringIO()
        served = asyncio.run(
            serve_stdio_async(
                service, io.StringIO("\n".join(lines) + "\n"), out
            )
        )
        return served, [
            json.loads(s) for s in out.getvalue().splitlines()
        ]

    def test_same_envelopes_as_sync_loop(self, cm_graph, workload):
        lines = [
            '{"op": "ping", "id": 0}',
            "{not json",
            '{"op": "frobnicate", "id": 2}',
            json.dumps({"op": "query", "graph": "missing", "id": 3}),
            json.dumps({"op": "shutdown", "id": 4}),
        ]
        config = ServiceConfig(max_workers=2)
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            sync_served, sync_responses = _run_lines(svc, lines)
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            async_served, async_responses = self._run_async(svc, lines)
        assert async_served == sync_served == 5
        assert async_responses == sync_responses

    def test_oversized_line_async(self, cm_graph):
        config = ServiceConfig(max_workers=2, max_request_bytes=256)
        with TCSMService(config) as svc:
            svc.load_graph("cm", cm_graph)
            big = json.dumps({"op": "ping", "pad": "x" * 1024})
            served, responses = self._run_async(
                svc, [big, '{"op": "ping"}']
            )
        assert served == 2
        _assert_structured_error(responses[0])
        assert "max_request_bytes" in responses[0]["error"]
        assert responses[1]["status"] == "ok"
