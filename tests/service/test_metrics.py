"""Tests for the service metrics registry and histograms."""

import threading

import pytest

from repro.service import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["sum"] == 0.0
        assert snap["min"] is None
        assert snap["max"] is None
        assert snap["mean"] is None
        assert snap["buckets"] == {}

    def test_bucketing_boundaries(self):
        hist = Histogram(bounds=(0.001, 0.01, 0.1))
        hist.observe(0.0004)  # below the first bound
        hist.observe(0.001)  # exactly on a bound -> that bucket (le)
        hist.observe(0.05)
        hist.observe(5.0)  # beyond every bound -> overflow
        buckets = hist.snapshot()["buckets"]
        assert buckets == {"le_0.001": 2, "le_0.1": 1, "inf": 1}

    def test_summary_statistics(self):
        hist = Histogram(bounds=(1.0,))
        for value in (0.5, 1.5, 1.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.0)
        assert snap["min"] == 0.5
        assert snap["max"] == 1.5
        assert snap["mean"] == pytest.approx(1.0)

    def test_bounds_are_sorted(self):
        hist = Histogram(bounds=(0.1, 0.001, 0.01))
        assert hist.bounds == (0.001, 0.01, 0.1)

    def test_default_buckets_cover_sub_millisecond_to_deadline(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 30.0


class TestMetricsRegistry:
    def test_counters_default_to_zero(self):
        metrics = MetricsRegistry()
        assert metrics.counter("never_touched") == 0

    def test_inc_and_counter(self):
        metrics = MetricsRegistry()
        metrics.inc("queries_total")
        metrics.inc("queries_total", by=2)
        assert metrics.counter("queries_total") == 3

    def test_labelled_counters_are_independent(self):
        metrics = MetricsRegistry()
        metrics.inc("queries_total.tcsm-eve")
        metrics.inc("queries_total.tcsm-v2v", by=4)
        assert metrics.counter("queries_total.tcsm-eve") == 1
        assert metrics.counter("queries_total.tcsm-v2v") == 4

    def test_observe_creates_histogram(self):
        metrics = MetricsRegistry()
        metrics.observe("match_seconds", 0.002)
        snap = metrics.snapshot()
        assert snap["histograms"]["match_seconds"]["count"] == 1

    def test_uptime_and_rate_with_fake_clock(self):
        now = [100.0]
        metrics = MetricsRegistry(clock=lambda: now[0])
        metrics.inc("queries_total", by=10)
        now[0] = 105.0
        assert metrics.uptime_seconds() == pytest.approx(5.0)
        assert metrics.rate("queries_total") == pytest.approx(2.0)

    def test_rate_at_zero_uptime(self):
        metrics = MetricsRegistry(clock=lambda: 1.0)
        metrics.inc("queries_total")
        assert metrics.rate("queries_total") == 0.0

    def test_snapshot_is_plain_sorted_data(self):
        metrics = MetricsRegistry()
        metrics.inc("b")
        metrics.inc("a")
        snap = metrics.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["uptime_seconds"] >= 0.0

    def test_concurrent_increments_do_not_lose_updates(self):
        metrics = MetricsRegistry()

        def hammer():
            for _ in range(500):
                metrics.inc("hits")
                metrics.observe("latency", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits") == 2000
        snap = metrics.snapshot()
        assert snap["histograms"]["latency"]["count"] == 2000
