"""Shared fixtures for the service-subsystem tests."""

import pytest

from repro.datasets import (
    load_dataset,
    paper_constraints,
    paper_query,
    toy_instance,
)


@pytest.fixture(scope="session")
def toy():
    return toy_instance()


@pytest.fixture(scope="session")
def cm_graph():
    """A small CollegeMsg stand-in for serving tests."""
    return load_dataset("CM", scale=0.02, seed=1)


@pytest.fixture(scope="session")
def workload():
    """The paper's default workload: (q1, tc2)."""
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    return query, constraints
