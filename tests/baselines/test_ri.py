"""Tests for the RI / RI-DS baseline."""

import pytest

from repro.baselines import greatest_constraint_first_order
from repro.baselines.ri import RIMatcher
from repro.core import MatchOptions, brute_force_matches, find_matches
from repro.datasets import TOY_EXPECTED_MATCH_COUNT, random_instance, toy_instance
from repro.errors import AlgorithmError
from repro.graphs import QueryGraph, TemporalConstraints


class TestGCFOrder:
    def test_is_permutation(self):
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 3), (3, 0)]
        )
        order = greatest_constraint_first_order(query)
        assert sorted(order) == list(range(4))

    def test_seed_is_max_degree(self):
        # Star: hub 0 has degree 3.
        query = QueryGraph(["H", "S", "S", "S"], [(0, 1), (0, 2), (0, 3)])
        order = greatest_constraint_first_order(query)
        assert order[0] == 0

    def test_prefers_visited_connections(self):
        # Path 0-1-2 plus pendant 3 on 0: after [1], vertex 0 and 2 tie on
        # degree but both connect to 1; then the vertex with more visited
        # links leads.
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (1, 2), (0, 3)]
        )
        order = greatest_constraint_first_order(query)
        # Every non-seed vertex (in a connected query) should touch the
        # prefix when chosen.
        placed = {order[0]}
        for u in order[1:]:
            assert query.neighbors(u) & placed
            placed.add(u)

    def test_single_vertex(self):
        query = QueryGraph(["A"], [])
        assert greatest_constraint_first_order(query) == [0]


class TestRIDS:
    def test_toy_counts(self):
        query, tc, graph, _, _ = toy_instance()
        for algo in ("ri", "ri-ds"):
            result = find_matches(query, tc, graph, algorithm=algo)
            assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    def test_name_reflects_variant(self):
        query, tc, graph, _, _ = toy_instance()
        assert RIMatcher(query, tc, graph).name == "ri-ds"
        assert RIMatcher(query, tc, graph, use_domains=False).name == "ri"

    def test_mismatched_constraints_rejected(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=5)
        graph, _, _ = None, None, None
        from repro.datasets import random_temporal_graph

        data = random_temporal_graph(4, 6, ("A", "B"), seed=0)
        with pytest.raises(AlgorithmError):
            RIMatcher(query, tc, data)

    @pytest.mark.parametrize("seed", range(10))
    def test_differential_vs_oracle(self, seed):
        query, tc, graph = random_instance(seed=seed)
        oracle = set(brute_force_matches(query, tc, graph))
        for algo in ("ri", "ri-ds"):
            got = set(find_matches(query, tc, graph, algorithm=algo).matches)
            assert got == oracle

    def test_limit_respected(self):
        query, tc, graph, _, _ = toy_instance()
        result = find_matches(query, tc, graph, algorithm="ri-ds",
                              options=MatchOptions(limit=1))
        assert result.num_matches == 1
        assert result.stats.budget_exhausted

    def test_domains_prune_but_preserve(self):
        # RI-DS and RI agree; RI-DS should consider no more candidates.
        query, tc, graph = random_instance(seed=77)
        plain = find_matches(query, tc, graph, algorithm="ri")
        domains = find_matches(query, tc, graph, algorithm="ri-ds")
        assert set(plain.matches) == set(domains.matches)
        assert (
            domains.stats.candidates_generated
            <= plain.stats.candidates_generated
        )
