"""Tests for the shared CSM substrate (stream, pin orders, delta search)."""

import pytest

from repro.baselines.csm import CSMMatcherBase, connected_edge_order
from repro.core import MatchOptions, find_matches
from repro.datasets import TOY_EXPECTED_MATCH_COUNT, toy_instance, toy_query
from repro.errors import AlgorithmError
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph


class TestConnectedEdgeOrder:
    def test_starts_at_pin(self):
        query, _ = toy_query()
        for e in range(query.num_edges):
            assert connected_edge_order(query, e)[0] == e

    def test_is_permutation(self):
        query, _ = toy_query()
        for e in range(query.num_edges):
            order = connected_edge_order(query, e)
            assert sorted(order) == list(range(query.num_edges))

    def test_prefix_connectivity(self):
        query, _ = toy_query()
        order = connected_edge_order(query, 0)
        for pos in range(1, len(order)):
            e = order[pos]
            assert any(
                query.edges_share_vertex(e, order[p]) for p in range(pos)
            )

    def test_disconnected_components_appended(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        order = connected_edge_order(query, 0)
        assert order == [0, 1]
        order = connected_edge_order(query, 1)
        assert order == [1, 0]


class TestDeltaSemantics:
    def test_each_match_reported_once(self):
        # Duplicate-free reporting is the heart of the pinned delta search;
        # a graph with many timestamps per pair stresses it.
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "C"],
            [(0, 1, t) for t in range(4)] + [(1, 2, t) for t in range(4)],
        )
        result = find_matches(query, tc, graph, algorithm="graphflow")
        assert result.num_matches == 16
        assert len(set(result.matches)) == 16

    def test_empty_data_graph(self):
        query = QueryGraph(["A", "B"], [(0, 1)])
        tc = TemporalConstraints([], num_edges=1)
        graph = TemporalGraph(["A", "B"])
        result = find_matches(query, tc, graph, algorithm="graphflow")
        assert result.num_matches == 0

    def test_constraints_post_filtered(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 1)], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "C"], [(0, 1, 0), (1, 2, 1), (1, 2, 50)]
        )
        result = find_matches(query, tc, graph, algorithm="graphflow")
        assert result.num_matches == 1
        assert result.matches[0].timestamp_vector() == (0, 1)

    def test_no_query_edges_rejected(self):
        query = QueryGraph(["A"], [])
        tc = TemporalConstraints([], num_edges=0)
        graph = TemporalGraph(["A"])
        with pytest.raises(AlgorithmError, match="at least one query edge"):
            find_matches(query, tc, graph, algorithm="graphflow")

    def test_limit_stops_stream(self):
        query, tc, graph, _, _ = toy_instance()
        result = find_matches(
            query, tc, graph, algorithm="graphflow",
            options=MatchOptions(limit=1),
        )
        assert result.num_matches == 1
        assert result.stats.budget_exhausted

    def test_base_class_name(self):
        assert CSMMatcherBase.name == "csm-base"
