"""Unit tests for the baselines' candidate-index machinery."""

import pytest

from repro.baselines.csm.calig import CaLiGMatcher
from repro.baselines.csm.dynamic_index import Dependency, DynamicCandidateIndex
from repro.baselines.csm.iedyn import is_tree_query
from repro.baselines.csm.rapidflow import core_first_edge_order
from repro.baselines.csm.symbi import query_dag_orientation
from repro.baselines.csm.turboflux import spanning_tree_dependencies
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph


class TestDependency:
    def test_invalid_direction(self):
        with pytest.raises(ValueError, match="direction"):
            Dependency(0, 1, "sideways")


class TestDynamicCandidateIndex:
    @pytest.fixture
    def setup(self):
        # Query path: 0(A) -> 1(B) -> 2(C); deps bottom-up along the path.
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        snapshot = TemporalGraph(["A", "B", "C", "B"])
        deps = [Dependency(0, 1, "out"), Dependency(1, 2, "out")]
        index = DynamicCandidateIndex(query, snapshot, deps)
        return query, snapshot, index

    def test_initial_state(self, setup):
        _, _, index = setup
        # Leaf (vertex 2, no deps): label candidates immediately.
        assert index.allows(2, 2)
        # Dependent vertices start empty.
        assert not index.allows(1, 1)
        assert not index.allows(0, 0)

    def test_propagation_on_insert(self, setup):
        _, snapshot, index = setup
        # Insert B -> C: vertex 1 becomes candidate for query vertex 1.
        snapshot.add_edge(1, 2, 5)
        index.insert_pair(1, 2)
        assert index.allows(1, 1)
        assert not index.allows(0, 0)
        # Insert A -> B: root becomes candidate (transitive support ready).
        snapshot.add_edge(0, 1, 6)
        index.insert_pair(0, 1)
        assert index.allows(0, 0)

    def test_transitive_flip_propagates_through_existing_edges(self, setup):
        _, snapshot, index = setup
        # Insert A -> B FIRST: no candidate yet (B unsupported).
        snapshot.add_edge(0, 1, 1)
        index.insert_pair(0, 1)
        assert not index.allows(0, 0)
        # Now B -> C arrives; the flip of (1, 1) must reach (0, 0) through
        # the pre-existing A -> B edge.
        snapshot.add_edge(1, 2, 2)
        index.insert_pair(1, 2)
        assert index.allows(0, 0)

    def test_label_gate(self, setup):
        _, snapshot, index = setup
        # Vertex 3 has label B: candidate for query vertex 1 once supported.
        snapshot.add_edge(3, 2, 1)
        index.insert_pair(3, 2)
        assert index.allows(1, 3)
        # But never for query vertex 0 (label A).
        assert not index.allows(0, 3)

    def test_candidate_counts(self, setup):
        _, snapshot, index = setup
        assert index.candidate_counts() == [0, 0, 1]


class TestSpanningTreeDependencies:
    def test_tree_covers_all_vertices(self):
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 3), (3, 0)]
        )
        deps = spanning_tree_dependencies(query)
        children = {d.child for d in deps}
        # A spanning tree on 4 vertices has 3 tree edges => 3+ deps
        # (antiparallel pairs add extras) covering all non-root vertices.
        assert len(children) == 3

    def test_antiparallel_pair_gives_two_deps(self):
        query = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        deps = spanning_tree_dependencies(query)
        directions = {d.direction for d in deps}
        assert directions == {"out", "in"}

    def test_disconnected_query(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        deps = spanning_tree_dependencies(query)
        children = {d.child for d in deps}
        assert len(children) == 2  # one tree edge per component


class TestQueryDagOrientation:
    def test_every_edge_oriented_once(self):
        query = QueryGraph(
            ["A", "B", "C"], [(0, 1), (1, 2), (2, 0)]
        )
        oriented = query_dag_orientation(query)
        assert sorted(idx for _, _, idx in oriented) == [0, 1, 2]

    def test_orientation_acyclic(self):
        query = QueryGraph(
            ["A", "B", "C", "D"],
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        )
        oriented = query_dag_orientation(query)
        # Topological check: repeatedly remove zero-in-degree vertices.
        from collections import defaultdict

        out = defaultdict(set)
        indeg = defaultdict(int)
        nodes = set(query.vertices())
        for parent, child, _ in oriented:
            if child not in out[parent]:
                out[parent].add(child)
                indeg[child] += 1
        removed = set()
        changed = True
        while changed:
            changed = False
            for u in list(nodes - removed):
                if indeg[u] == 0:
                    removed.add(u)
                    for w in out[u]:
                        indeg[w] -= 1
                    changed = True
        assert removed == nodes


class TestTreeDetection:
    def test_path_is_tree(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        assert is_tree_query(query)

    def test_cycle_is_not(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        assert not is_tree_query(query)

    def test_antiparallel_pair_is_not(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 0)])
        assert not is_tree_query(query)

    def test_forest_is_not(self):
        query = QueryGraph(["A", "B", "C", "D"], [(0, 1), (2, 3)])
        assert not is_tree_query(query)


class TestCoreFirstOrder:
    def test_pin_always_first(self):
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 0), (2, 3)]
        )
        for pin in range(query.num_edges):
            order = core_first_edge_order(query, pin)
            assert order[0] == pin
            assert sorted(order) == list(range(query.num_edges))

    def test_leaf_edge_stripped_to_tail(self):
        # Edge (2, 3) hangs off the triangle: it must come last unless
        # pinned.
        query = QueryGraph(
            ["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 0), (2, 3)]
        )
        order = core_first_edge_order(query, 0)
        assert order[-1] == 3

    def test_path_query_strips_to_pin(self):
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        order = core_first_edge_order(query, 0)
        assert order[0] == 0


class TestCaLiGLighting:
    def test_lighting_requires_neighbourhood_support(self):
        # Query: A -> B -> C.  Data: 0(A) -> 1(B) -> 2(C), plus 3(B) with
        # no out-edge: 3 can never be lit for the middle query vertex,
        # while the supported chain is fully lit.
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([], num_edges=2)
        graph = TemporalGraph(
            ["A", "B", "C", "B"], [(0, 1, 1), (1, 2, 2), (0, 3, 3)]
        )
        matcher = CaLiGMatcher(query, tc, graph)
        matcher.prepare()
        # Replay the stream manually to reach the final snapshot.
        for edge in graph.edges_by_time():
            matcher.snapshot.add_edge(edge.u, edge.v, edge.t)
        matcher._begin_insertion_searches()
        assert matcher.vertex_allowed(0, 0)
        assert matcher.vertex_allowed(1, 1)
        assert matcher.vertex_allowed(2, 2)
        assert not matcher.vertex_allowed(1, 3)  # B lacks a C out-neighbour
