"""Budget/limit behaviour across the baseline matchers."""

import pytest

from repro.baselines import BASELINE_NAMES
from repro.core import MatchOptions, find_matches
from repro.datasets import toy_instance


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestBudgets:
    @pytest.mark.parametrize("algo", BASELINE_NAMES)
    def test_zero_time_budget_stops(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo,
                              options=MatchOptions(time_budget=0.0))
        assert result.stats.budget_exhausted
        assert result.num_matches == 0

    @pytest.mark.parametrize("algo", BASELINE_NAMES)
    def test_limit_one(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo,
                              options=MatchOptions(limit=1))
        assert result.num_matches == 1
        assert result.stats.budget_exhausted

    @pytest.mark.parametrize("algo", BASELINE_NAMES)
    def test_stats_populated(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo)
        assert result.stats.matches == result.num_matches == 2
        # Every baseline does real work on this instance.
        assert result.stats.validations > 0
