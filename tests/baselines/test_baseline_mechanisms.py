"""White-box tests: each CSM baseline exercises its distinguishing mechanism.

Agreement tests prove the baselines *correct*; these prove they are not
all the same algorithm wearing different names — each one's signature
data structure must demonstrably do something on a real run.
"""

import pytest

from repro.core import create_matcher, find_matches
from repro.datasets import load_dataset, paper_constraints, paper_query


@pytest.fixture(scope="module")
def instance():
    graph = load_dataset("CM", scale=0.01, seed=2)
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    return query, constraints, graph


def run_matcher(algo, instance, **options):
    query, constraints, graph = instance
    matcher = create_matcher(algo, query, constraints, graph, **options)
    matcher.prepare()
    count = sum(1 for _ in matcher.run())
    return matcher, count


class TestNewSPCaching:
    def test_cache_populated_and_hit(self, instance):
        matcher, _ = run_matcher("newsp", instance)
        # After the stream, the per-insertion cache holds the last
        # insertion's expansions.
        assert matcher._cache
        # Cached lists round-trip identically with the uncached expansion.
        key = next(iter(matcher._cache))
        kind, vertex, label = key
        if kind == "out":
            fresh = tuple(
                super(type(matcher), matcher)._expand_out(vertex, label)
            )
        else:
            fresh = tuple(
                super(type(matcher), matcher)._expand_in(vertex, label)
            )
        assert matcher._cache[key] == fresh


class TestSJTreeMaterialisation:
    def test_levels_store_partials(self, instance):
        matcher, count = run_matcher("sj-tree", instance)
        stored = sum(len(level) for level in matcher._levels)
        # The join tree materialises strictly more partials than there
        # are complete matches — that is its memory signature.
        assert stored > count
        # Level 0 holds every single-edge partial seen so far.
        assert len(matcher._levels[0]) > 0


class TestTurboFluxIndex:
    def test_index_prunes_candidates(self, instance):
        query, constraints, graph = instance
        indexed = find_matches(query, constraints, graph, algorithm="turboflux")
        plain = find_matches(query, constraints, graph, algorithm="graphflow")
        assert indexed.num_matches == plain.num_matches
        # The spanning-tree index must reject some vertices the index-free
        # search had to try.
        assert (
            indexed.stats.candidates_generated
            <= plain.stats.candidates_generated
        )

    def test_index_state_nontrivial(self, instance):
        matcher, _ = run_matcher("turboflux", instance)
        counts = matcher._index.candidate_counts()
        assert any(c > 0 for c in counts)
        # Dependency-bearing query vertices have *filtered* candidate sets
        # (smaller than their full label class).
        graph = matcher.graph
        query = matcher.query
        for u in query.vertices():
            if matcher._index.dep_count[u] > 0:
                label_class = len(graph.vertices_with_label(query.label(u)))
                assert counts[u] <= label_class


class TestSymBiBidirectional:
    def test_two_directions_strictly_stronger_than_one(self, instance):
        matcher, _ = run_matcher("symbi", instance)
        down = matcher._down.candidate_counts()
        up = matcher._up.candidate_counts()
        combined = [
            len(matcher._down.cand[u] & matcher._up.cand[u])
            for u in matcher.query.vertices()
        ]
        # The intersection is what vertex_allowed uses; it must be no
        # larger than either single direction.
        for c, d, u_ in zip(combined, down, up):
            assert c <= d and c <= u_


class TestIEDynTreeSpecialisation:
    def test_tree_query_gets_two_indexes(self):
        from repro.datasets import random_temporal_graph
        from repro.graphs import QueryGraph, TemporalConstraints

        tree_query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        tc = TemporalConstraints([(0, 1, 10)], num_edges=2)
        graph = random_temporal_graph(10, 40, ("A", "B", "C"), seed=4)
        matcher = create_matcher("iedyn", tree_query, tc, graph)
        matcher.prepare()
        assert len(matcher._indexes) == 2

    def test_cyclic_query_gets_spanning_tree_only(self, instance):
        matcher, _ = run_matcher("iedyn", instance)  # q1 contains cycles
        assert len(matcher._indexes) == 1


class TestCaLiGLightingMemo:
    def test_memo_used_within_insertion(self, instance):
        matcher, _ = run_matcher("calig", instance)
        # After the final insertion's searches the memo holds lighting
        # states (cleared per insertion, so only the last batch remains).
        assert isinstance(matcher._memo, dict)

    def test_lighting_depth_bounds_work(self, instance):
        query, constraints, graph = instance
        deep = find_matches(query, constraints, graph, algorithm="calig")
        assert deep.num_matches >= 0  # runs to completion


class TestRapidFlowReduction:
    def test_core_first_order_used(self, instance):
        matcher, _ = run_matcher("rapidflow", instance)
        from repro.baselines.csm.rapidflow import core_first_edge_order

        for pin, order in enumerate(matcher._pin_orders):
            assert order == core_first_edge_order(matcher.query, pin)

    def test_agrees_with_plain_order(self, instance):
        query, constraints, graph = instance
        reduced = find_matches(query, constraints, graph, algorithm="rapidflow")
        plain = find_matches(query, constraints, graph, algorithm="graphflow")
        assert set(reduced.matches) == set(plain.matches)
