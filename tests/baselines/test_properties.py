"""Property-based differential tests across all twelve matchers."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import BASELINE_NAMES
from repro.core import brute_force_matches, find_matches
from repro.graphs import QueryGraph, TemporalConstraints, TemporalGraph

LABELS = ("A", "B")

ALL_ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve") + BASELINE_NAMES


@st.composite
def small_instances(draw):
    n = draw(st.integers(min_value=2, max_value=3))
    labels = [draw(st.sampled_from(LABELS)) for _ in range(n)]
    possible = [(a, b) for a in range(n) for b in range(n) if a != b]
    edges = [(i, i + 1) for i in range(n - 1)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=2, unique=True))
    for pair in extra:
        if pair not in edges:
            edges.append(pair)
    query = QueryGraph(labels, edges)

    m = query.num_edges
    triples = []
    if m >= 2:
        seen = set()
        for i, j in draw(
            st.lists(
                st.tuples(st.integers(0, m - 1), st.integers(0, m - 1)).filter(
                    lambda p: p[0] != p[1]
                ),
                max_size=2,
            )
        ):
            if (i, j) not in seen:
                seen.add((i, j))
                triples.append((i, j, draw(st.integers(0, 5))))
    constraints = TemporalConstraints(triples, num_edges=m)

    dn = draw(st.integers(min_value=2, max_value=5))
    dlabels = [draw(st.sampled_from(LABELS)) for _ in range(dn)]
    dpossible = [(a, b) for a in range(dn) for b in range(dn) if a != b]
    dedges = draw(
        st.lists(
            st.tuples(st.sampled_from(dpossible), st.integers(0, 8)),
            min_size=1,
            max_size=10,
        )
    )
    graph = TemporalGraph(dlabels, [(u, v, t) for (u, v), t in dedges])
    return query, constraints, graph


@settings(max_examples=40, deadline=None)
@given(small_instances())
def test_all_matchers_agree_with_oracle(instance):
    query, tc, graph = instance
    oracle = set(brute_force_matches(query, tc, graph))
    for algo in ALL_ALGORITHMS:
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle, f"{algo} disagrees with oracle"
