"""Differential tests: every CSM baseline vs the brute-force oracle."""

import pytest

from repro.baselines import BASELINE_NAMES
from repro.core import brute_force_matches, find_matches, is_valid_match
from repro.datasets import (
    TOY_EXPECTED_MATCH_COUNT,
    random_instance,
    toy_instance,
)

CSM_NAMES = tuple(n for n in BASELINE_NAMES if n not in ("ri", "ri-ds"))


@pytest.fixture(scope="module")
def toy():
    return toy_instance()


class TestToyAgreement:
    @pytest.mark.parametrize("algo", CSM_NAMES)
    def test_count(self, toy, algo):
        query, tc, graph, _, _ = toy
        result = find_matches(query, tc, graph, algorithm=algo)
        assert result.num_matches == TOY_EXPECTED_MATCH_COUNT

    @pytest.mark.parametrize("algo", CSM_NAMES)
    def test_matches_valid(self, toy, algo):
        query, tc, graph, _, _ = toy
        for match in find_matches(query, tc, graph, algorithm=algo).matches:
            assert is_valid_match(query, tc, graph, match)


class TestRandomAgreement:
    @pytest.mark.parametrize("algo", CSM_NAMES)
    @pytest.mark.parametrize("seed", range(5))
    def test_default_instances(self, algo, seed):
        query, tc, graph = random_instance(seed=seed)
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle

    @pytest.mark.parametrize("algo", CSM_NAMES)
    @pytest.mark.parametrize("seed", (100, 101))
    def test_multi_timestamp_instances(self, algo, seed):
        query, tc, graph = random_instance(
            seed=seed,
            query_vertices=3,
            query_edges=3,
            num_constraints=2,
            data_vertices=6,
            data_edges=40,
            max_time=6,
        )
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle

    @pytest.mark.parametrize("algo", CSM_NAMES)
    def test_tree_query_instance(self, algo):
        # Trees are IEDyn's native class; every baseline must handle them.
        query, tc, graph = random_instance(
            seed=500,
            query_vertices=5,
            query_edges=4,
            num_constraints=2,
            data_vertices=12,
            data_edges=50,
        )
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle

    @pytest.mark.parametrize("algo", CSM_NAMES)
    def test_single_label_symmetry(self, algo):
        query, tc, graph = random_instance(
            seed=600,
            query_vertices=3,
            query_edges=3,
            num_constraints=1,
            data_vertices=7,
            data_edges=25,
            num_labels=1,
        )
        oracle = set(brute_force_matches(query, tc, graph))
        got = set(find_matches(query, tc, graph, algorithm=algo).matches)
        assert got == oracle
