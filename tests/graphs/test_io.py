"""Tests for SNAP-format I/O."""

import gzip

import pytest

from repro.errors import DatasetError
from repro.graphs import (
    TemporalGraph,
    default_label_alphabet,
    load_labels,
    load_snap_temporal,
    save_labels,
    save_snap_temporal,
)


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "toy.txt"
    path.write_text(
        "# comment line\n"
        "10 20 100\n"
        "20 30 50\n"
        "\n"
        "10 20 200\n"
        "30 30 60\n"  # self loop, dropped
    )
    return path


class TestLoadSnap:
    def test_basic_load(self, sample_file):
        g = load_snap_temporal(sample_file, seed=1)
        assert g.num_vertices == 3
        assert g.num_temporal_edges == 3  # self loop dropped
        # Raw ids remapped densely in first-seen order: 10->0, 20->1, 30->2.
        assert g.timestamps(0, 1) == (100, 200)
        assert g.timestamps(1, 2) == (50,)

    def test_deterministic_random_labels(self, sample_file):
        a = load_snap_temporal(sample_file, seed=7)
        b = load_snap_temporal(sample_file, seed=7)
        assert a.labels == b.labels

    def test_explicit_label_map(self, sample_file):
        g = load_snap_temporal(sample_file, labels={10: "X", 20: "Y", 30: "Z"})
        assert g.labels == ("X", "Y", "Z")

    def test_missing_label_in_map(self, sample_file):
        with pytest.raises(DatasetError, match="no label"):
            load_snap_temporal(sample_file, labels={10: "X"})

    def test_max_edges_cap(self, sample_file):
        g = load_snap_temporal(sample_file, max_edges=2)
        assert g.num_temporal_edges == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_snap_temporal(tmp_path / "nope.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(DatasetError, match="expected"):
            load_snap_temporal(path)

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 xyz\n")
        with pytest.raises(DatasetError):
            load_snap_temporal(path)

    def test_gzip_transparency(self, tmp_path):
        path = tmp_path / "toy.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1 2 10\n2 3 20\n")
        g = load_snap_temporal(path)
        assert g.num_temporal_edges == 2


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path):
        original = TemporalGraph(
            ["A", "B", "A"], [(0, 1, 5), (1, 2, 3), (0, 1, 9)]
        )
        path = tmp_path / "graph.txt"
        save_snap_temporal(original, path)
        reloaded = load_snap_temporal(path)
        assert reloaded.num_vertices == original.num_vertices
        assert reloaded.num_temporal_edges == original.num_temporal_edges
        # Sidecar labels preserve the original labeling exactly.
        # Dense remap order follows time-sorted edges: (1,2,3) first.
        assert sorted(reloaded.labels) == sorted(original.labels)

    def test_sidecar_labels_autodiscovered(self, tmp_path):
        original = TemporalGraph(["X", "Y"], [(0, 1, 1)])
        path = tmp_path / "g.txt"
        save_snap_temporal(original, path)
        assert (tmp_path / "g.txt.labels").exists()
        reloaded = load_snap_temporal(path)
        assert set(reloaded.labels) == {"X", "Y"}


class TestLabelFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "labels.txt"
        save_labels({0: "A", 2: "C", 1: "B"}, path)
        assert load_labels(path) == {0: "A", 1: "B", 2: "C"}

    def test_malformed(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError, match="expected"):
            load_labels(path)


class TestLabelAlphabet:
    def test_small(self):
        assert default_label_alphabet(3) == ("A", "B", "C")

    def test_beyond_26(self):
        labels = default_label_alphabet(28)
        assert labels[25] == "Z"
        assert labels[26] == "L26"
        assert len(labels) == 28

    def test_invalid(self):
        with pytest.raises(DatasetError):
            default_label_alphabet(0)
