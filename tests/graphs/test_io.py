"""Tests for SNAP-format I/O."""

import gzip

import pytest

from repro.errors import DatasetError
from repro.graphs import (
    TemporalGraph,
    default_label_alphabet,
    load_labels,
    load_snap_temporal,
    save_labels,
    save_snap_temporal,
)


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "toy.txt"
    path.write_text(
        "# comment line\n"
        "10 20 100\n"
        "20 30 50\n"
        "\n"
        "10 20 200\n"
        "30 30 60\n"  # self loop, dropped
    )
    return path


class TestLoadSnap:
    def test_basic_load(self, sample_file):
        g = load_snap_temporal(sample_file, seed=1)
        assert g.num_vertices == 3
        assert g.num_temporal_edges == 3  # self loop dropped
        # Raw ids remapped densely in first-seen order: 10->0, 20->1, 30->2.
        assert g.timestamps(0, 1) == (100, 200)
        assert g.timestamps(1, 2) == (50,)

    def test_deterministic_random_labels(self, sample_file):
        a = load_snap_temporal(sample_file, seed=7)
        b = load_snap_temporal(sample_file, seed=7)
        assert a.labels == b.labels

    def test_explicit_label_map(self, sample_file):
        g = load_snap_temporal(sample_file, labels={10: "X", 20: "Y", 30: "Z"})
        assert g.labels == ("X", "Y", "Z")

    def test_missing_label_in_map(self, sample_file):
        with pytest.raises(DatasetError, match="no label"):
            load_snap_temporal(sample_file, labels={10: "X"})

    def test_max_edges_cap(self, sample_file):
        g = load_snap_temporal(sample_file, max_edges=2)
        assert g.num_temporal_edges == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_snap_temporal(tmp_path / "nope.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(DatasetError, match="expected"):
            load_snap_temporal(path)

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 xyz\n")
        with pytest.raises(DatasetError):
            load_snap_temporal(path)

    def test_gzip_transparency(self, tmp_path):
        path = tmp_path / "toy.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1 2 10\n2 3 20\n")
        g = load_snap_temporal(path)
        assert g.num_temporal_edges == 2


class TestVerbatimIds:
    """A dense label domain keeps file ids verbatim (no remap)."""

    def test_dense_sidecar_preserves_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("2 0 100\n0 1 50\n")
        g = load_snap_temporal(path, labels={0: "A", 1: "B", 2: "C"})
        assert g.labels == ("A", "B", "C")
        assert g.timestamps(2, 0) == (100,)
        assert g.timestamps(0, 1) == (50,)

    def test_universe_covers_unreferenced_vertices(self, tmp_path):
        # The label map defines the universe, so a file prefix can load
        # with vertices only the streamed remainder will touch.
        path = tmp_path / "g.txt"
        path.write_text("0 1 10\n")
        g = load_snap_temporal(path, labels={0: "A", 1: "B", 2: "C", 3: "A"})
        assert g.num_vertices == 4
        assert g.num_temporal_edges == 1

    def test_edge_outside_universe_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5 10\n")
        with pytest.raises(DatasetError, match="outside the label map"):
            load_snap_temporal(path, labels={0: "A", 1: "B"})

    def test_sparse_label_domain_still_remaps(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20 7\n")
        g = load_snap_temporal(path, labels={10: "X", 20: "Y"})
        assert g.labels == ("X", "Y")
        assert g.timestamps(0, 1) == (7,)


class TestRoundTrip:
    def test_save_and_reload_is_lossless(self, tmp_path):
        original = TemporalGraph(
            ["A", "B", "A"], [(0, 1, 5), (1, 2, 3), (0, 1, 9)]
        )
        path = tmp_path / "graph.txt"
        save_snap_temporal(original, path)
        reloaded = load_snap_temporal(path)
        # The sidecar's dense domain keeps ids verbatim: the round-trip
        # reproduces the graph exactly, not just up to isomorphism.
        assert reloaded.labels == original.labels
        assert sorted(reloaded.edges()) == sorted(original.edges())
        assert reloaded.freeze().fingerprint == original.freeze().fingerprint

    def test_sidecar_labels_autodiscovered(self, tmp_path):
        original = TemporalGraph(["X", "Y"], [(0, 1, 1)])
        path = tmp_path / "g.txt"
        save_snap_temporal(original, path)
        assert (tmp_path / "g.txt.labels").exists()
        reloaded = load_snap_temporal(path)
        assert set(reloaded.labels) == {"X", "Y"}


class TestLabelFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "labels.txt"
        save_labels({0: "A", 2: "C", 1: "B"}, path)
        assert load_labels(path) == {0: "A", 1: "B", 2: "C"}

    def test_malformed(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError, match="expected"):
            load_labels(path)


class TestLabelAlphabet:
    def test_small(self):
        assert default_label_alphabet(3) == ("A", "B", "C")

    def test_beyond_26(self):
        labels = default_label_alphabet(28)
        assert labels[25] == "Z"
        assert labels[26] == "L26"
        assert len(labels) == 28

    def test_invalid(self):
        with pytest.raises(DatasetError):
            default_label_alphabet(0)
