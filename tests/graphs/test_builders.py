"""Tests for named graph builders."""

import pytest

from repro.errors import GraphError, QueryError
from repro.graphs import QueryBuilder, TemporalGraphBuilder


class TestQueryBuilder:
    def test_build_roundtrip(self):
        b = QueryBuilder()
        b.vertex("u1", "A").vertex("u2", "B")
        idx = b.edge("u1", "u2")
        query, names = b.build()
        assert idx == 0
        assert query.edge(0) == (names["u1"], names["u2"])
        assert query.label(names["u2"]) == "B"

    def test_edge_indices_sequential(self):
        b = QueryBuilder()
        b.vertex("a", "A").vertex("b", "B").vertex("c", "C")
        assert b.edge("a", "b") == 0
        assert b.edge("b", "c") == 1

    def test_duplicate_vertex_name(self):
        b = QueryBuilder().vertex("a", "A")
        with pytest.raises(QueryError, match="already declared"):
            b.vertex("a", "B")

    def test_unknown_vertex_in_edge(self):
        b = QueryBuilder().vertex("a", "A")
        with pytest.raises(QueryError, match="unknown vertex"):
            b.edge("a", "zz")


class TestTemporalGraphBuilder:
    def test_multiple_timestamps_per_edge(self):
        b = TemporalGraphBuilder()
        b.vertex("v1", "A").vertex("v2", "B")
        b.edge("v1", "v2", 1, 5, 3)
        graph, names = b.build()
        assert graph.timestamps(names["v1"], names["v2"]) == (1, 3, 5)
        assert graph.num_temporal_edges == 3

    def test_edge_requires_timestamp(self):
        b = TemporalGraphBuilder()
        b.vertex("v1", "A").vertex("v2", "B")
        with pytest.raises(GraphError, match="at least one timestamp"):
            b.edge("v1", "v2")

    def test_duplicate_vertex_name(self):
        b = TemporalGraphBuilder().vertex("v", "A")
        with pytest.raises(GraphError, match="already declared"):
            b.vertex("v", "B")

    def test_unknown_vertex_in_edge(self):
        b = TemporalGraphBuilder().vertex("v", "A")
        with pytest.raises(GraphError, match="unknown vertex"):
            b.edge("v", "w", 1)
