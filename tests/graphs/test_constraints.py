"""Tests for temporal constraints and their STN (difference-constraint) view."""

import math

import pytest

from repro.core import MatchOptions, find_matches
from repro.datasets import toy_constraints, toy_instance
from repro.errors import ConstraintError, InfeasibleConstraintsError
from repro.graphs import Constraint, TemporalConstraints


class TestConstraint:
    def test_satisfaction_window(self):
        c = Constraint(earlier=0, later=1, gap=3)
        assert c.is_satisfied(5, 5)
        assert c.is_satisfied(5, 8)
        assert not c.is_satisfied(5, 9)
        assert not c.is_satisfied(5, 4)  # ordering violated

    def test_fields_alias_paper_ijk(self):
        c = Constraint(2, 1, 3)
        assert (c.earlier, c.later, c.gap) == (2, 1, 3)


class TestValidation:
    def test_basic_construction(self):
        tc = TemporalConstraints([(0, 1, 5), (1, 2, 3)], num_edges=3)
        assert len(tc) == 2
        assert tc[0] == Constraint(0, 1, 5)

    def test_out_of_range_edge(self):
        with pytest.raises(ConstraintError, match="outside"):
            TemporalConstraints([(0, 5, 1)], num_edges=3)

    def test_self_loop(self):
        with pytest.raises(ConstraintError, match="self loop"):
            TemporalConstraints([(1, 1, 2)], num_edges=3)

    def test_negative_gap(self):
        with pytest.raises(ConstraintError, match="negative gap"):
            TemporalConstraints([(0, 1, -1)], num_edges=2)

    def test_nan_gap(self):
        with pytest.raises(ConstraintError, match="negative gap"):
            TemporalConstraints([(0, 1, math.nan)], num_edges=2)

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ConstraintError, match="duplicate"):
            TemporalConstraints([(0, 1, 5), (0, 1, 3)], num_edges=2)

    def test_merged_keeps_tightest(self):
        tc = TemporalConstraints.merged([(0, 1, 5), (0, 1, 3)], num_edges=2)
        assert len(tc) == 1
        assert tc[0].gap == 3

    def test_negative_num_edges(self):
        with pytest.raises(ConstraintError):
            TemporalConstraints([], num_edges=-1)

    def test_empty_set_is_valid(self):
        tc = TemporalConstraints([], num_edges=4)
        assert len(tc) == 0
        assert tc.is_feasible()


class TestAccessors:
    @pytest.fixture
    def tc(self):
        return TemporalConstraints([(0, 1, 5), (1, 2, 3), (0, 2, 9)], num_edges=4)

    def test_edges_involved(self, tc):
        assert tc.edges_involved() == frozenset({0, 1, 2})

    def test_degree(self, tc):
        assert tc.degree(0) == 2
        assert tc.degree(1) == 2
        assert tc.degree(3) == 0

    def test_involving(self, tc):
        assert set(tc.involving(2)) == {Constraint(1, 2, 3), Constraint(0, 2, 9)}

    def test_constraints_ending_at(self, tc):
        assert set(tc.constraints_ending_at(2)) == {
            Constraint(1, 2, 3),
            Constraint(0, 2, 9),
        }
        assert tc.constraints_ending_at(0) == ()

    def test_equality_ignores_order(self):
        a = TemporalConstraints([(0, 1, 5), (1, 2, 3)], num_edges=3)
        b = TemporalConstraints([(1, 2, 3), (0, 1, 5)], num_edges=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_check_partial_assignment(self, tc):
        # Only edges 0 and 1 assigned: constraint (0,1,5) applies.
        assert tc.check([0, 5, None, None])
        assert not tc.check([0, 6, None, None])
        assert tc.check([None, None, None, None])


class TestSTN:
    def test_transitive_tightening(self):
        # t1 - t0 <= 5 and t2 - t1 <= 3 imply t2 - t0 <= 8, ordering holds.
        tc = TemporalConstraints([(0, 1, 5), (1, 2, 3)], num_edges=3)
        lo, hi = tc.implied_window(0, 2)
        assert (lo, hi) == (0, 8)

    def test_explicit_beats_transitive_when_tighter(self):
        tc = TemporalConstraints([(0, 1, 5), (1, 2, 3), (0, 2, 4)], num_edges=3)
        assert tc.implied_window(0, 2) == (0, 4)

    def test_unconstrained_pair(self):
        tc = TemporalConstraints([(0, 1, 5)], num_edges=4)
        lo, hi = tc.implied_window(2, 3)
        assert lo == -math.inf and hi == math.inf

    def test_cycle_forces_equality(self):
        # 0 <= t1 - t0 <= 5 and 0 <= t0 - t1 <= 5 force t0 == t1.
        tc = TemporalConstraints([(0, 1, 5), (1, 0, 5)], num_edges=2)
        assert tc.is_feasible()
        assert tc.implied_window(0, 1) == (0, 0)

    def test_feasible_set(self):
        assert toy_constraints().is_feasible()

    def test_closed_contains_tightened_originals(self):
        tc = TemporalConstraints([(0, 1, 5), (1, 2, 3)], num_edges=3)
        closed = tc.closed()
        gaps = {(c.earlier, c.later): c.gap for c in closed}
        assert gaps[(0, 1)] == 5
        assert gaps[(1, 2)] == 3
        assert gaps[(0, 2)] == 8  # the implied constraint appears

    def test_closed_of_toy_is_feasible_and_superset(self):
        tc = toy_constraints()
        closed = tc.closed()
        original_pairs = {(c.earlier, c.later) for c in tc}
        closed_pairs = {(c.earlier, c.later) for c in closed}
        assert original_pairs <= closed_pairs
        # Tightening never loosens: every original pair has gap <= original.
        closed_gaps = {(c.earlier, c.later): c.gap for c in closed}
        for c in tc:
            assert closed_gaps[(c.earlier, c.later)] <= c.gap

    def test_infeasible_detected(self):
        # t1 - t0 in [0, 5]; separately t0 - t2 >= 0 >= ... build a negative
        # cycle: t1 >= t0, t2 >= t1, t0 - t2 <= -1 is inexpressible directly,
        # so use gap tightening: t1-t0<=0 and t0-t1<=... both zero is fine;
        # a genuine negative cycle needs asymmetric bounds:
        #   (0,1,0): t1 == t0 forced? no: t1-t0 in [0,0] -> t0==t1. Combine
        #   with (1,2,0) and (2,0,0): all equal, still feasible.
        # Infeasibility in this constraint language requires inconsistent
        # orderings with positive separation, which the [0,k] form cannot
        # express pairwise -- but closure can still detect inconsistency when
        # gaps conflict transitively with orderings:
        #   t1-t0 in [0,5], t2-t1 in [0,5], t0-t2 in [0,5] forces equality;
        # feasible. So feasibility always holds for this form; verify that.
        tc = TemporalConstraints(
            [(0, 1, 5), (1, 2, 5), (2, 0, 5)], num_edges=3
        )
        assert tc.is_feasible()
        closed = tc.closed()
        assert closed.implied_window(0, 1) == (0, 0)

    def test_closed_raises_on_artificial_negative_cycle(self):
        # Exercise the InfeasibleConstraintsError path via a handcrafted
        # subclass that injects a negative self-distance.
        class Broken(TemporalConstraints):
            def distance_matrix(self):
                d = super().distance_matrix()
                d[0][0] = -1.0
                return d

        broken = Broken([(0, 1, 5)], num_edges=2)
        assert not broken.is_feasible()
        with pytest.raises(InfeasibleConstraintsError):
            broken.closed()


class _NegativeCycle(TemporalConstraints):
    """Constraint set whose STN has a negative cycle.

    The paper's ``[0, gap]`` window form cannot express a negative cycle
    pairwise (see ``TestSTN.test_infeasible_detected``), so infeasibility
    is injected at the distance-matrix level, the representation every
    feasibility consumer actually reads.
    """

    def distance_matrix(self):
        dist = super().distance_matrix()
        dist[0][1] = 2.0
        dist[1][0] = -5.0  # t0 - t1 <= -5 together with t1 - t0 <= 2
        dist[0][0] = dist[1][1] = -3.0
        return dist


class TestSTNEdgeCases:
    def test_infeasible_raised_before_matching(self):
        # Tightening runs ahead of the search, so an infeasible constraint
        # set must surface as InfeasibleConstraintsError from find_matches
        # before any matcher touches the data graph.
        query, _, graph, _, _ = toy_instance()
        infeasible = _NegativeCycle(
            [(0, 1, 5)], num_edges=query.num_edges
        )
        assert not infeasible.is_feasible()
        with pytest.raises(InfeasibleConstraintsError):
            find_matches(
                query, infeasible, graph, algorithm="tcsm-e2e",
                options=MatchOptions(tighten=True),
            )

    @pytest.mark.parametrize(
        "spec, num_edges",
        [
            ([(0, 1, 5), (1, 2, 3)], 3),
            ([(0, 1, 5), (1, 2, 3), (0, 2, 9)], 4),
            ([(0, 1, 0), (1, 0, 0)], 2),
            ([], 3),
        ],
    )
    def test_tightening_is_idempotent(self, spec, num_edges):
        tc = TemporalConstraints(spec, num_edges=num_edges)
        once = tc.closed()
        twice = once.closed()
        assert twice == once
        assert hash(twice) == hash(once)

    def test_toy_tightening_is_idempotent(self):
        once = toy_constraints().closed()
        assert once.closed() == once

    def test_inf_survives_floyd_warshall(self):
        # Edge 3 is untouched by any constraint: every distance through it
        # must stay +inf (unconstrained), never become a huge finite bound.
        tc = TemporalConstraints(
            [(0, 1, 5), (1, 2, 3)], num_edges=4
        )
        dist = tc.distance_matrix()
        for other in range(3):
            assert dist[3][other] == math.inf
            assert dist[other][3] == math.inf
        assert tc.implied_window(0, 3) == (-math.inf, math.inf)
        # And the closure emits no constraint involving edge 3.
        assert all(3 not in (c.earlier, c.later) for c in tc.closed())

    def test_inf_gap_survives_floyd_warshall(self):
        # An explicit unbounded gap behaves as ordering-only: the closure
        # keeps the ordering (lo == 0) without inventing an upper bound.
        tc = TemporalConstraints(
            [(0, 1, math.inf), (1, 2, 4)], num_edges=3
        )
        dist = tc.distance_matrix()
        assert dist[0][1] == math.inf
        assert dist[0][2] == math.inf
        assert tc.implied_window(0, 2) == (0, math.inf)
        assert tc.is_feasible()


class TestToyConstraints:
    def test_five_constraints(self):
        tc = toy_constraints()
        assert len(tc) == 5
        assert tc.num_edges == 7

    def test_degrees_match_tc_graph(self):
        tc = toy_constraints()
        # e2 (index 1) participates in tc1, tc2, tc5.
        assert tc.degree(1) == 3
        # e5 (index 4) participates in none.
        assert tc.degree(4) == 0
