"""Tests for the static (de-temporal) graph."""

import pytest

from repro.errors import GraphError
from repro.graphs import StaticGraph


@pytest.fixture
def triangle():
    """0->1->2->0 with labels A, B, A."""
    return StaticGraph(["A", "B", "A"], [(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_empty_graph(self):
        g = StaticGraph([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_and_labels(self, triangle):
        assert triangle.num_vertices == 3
        assert list(triangle.vertices()) == [0, 1, 2]
        assert triangle.label(0) == "A"
        assert triangle.labels == ("A", "B", "A")

    def test_duplicate_edge_collapses(self):
        g = StaticGraph(["A", "B"], [(0, 1), (0, 1)])
        assert g.num_edges == 1
        assert g.add_edge(0, 1) is False

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            StaticGraph(["A"], [(0, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            StaticGraph(["A", "B"], [(0, 2)])

    def test_add_edge_returns_true_for_new(self):
        g = StaticGraph(["A", "B"])
        assert g.add_edge(0, 1) is True
        assert g.num_edges == 1


class TestAdjacency:
    def test_has_edge_is_directional(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_out_in_neighbors(self, triangle):
        assert triangle.out_neighbors(0) == frozenset({1})
        assert triangle.in_neighbors(0) == frozenset({2})

    def test_undirected_neighbors(self, triangle):
        assert triangle.neighbors(0) == frozenset({1, 2})

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert triangle.degree(0) == 2

    def test_antiparallel_pair_counts_once_in_neighbors(self):
        g = StaticGraph(["A", "B"], [(0, 1), (1, 0)])
        assert g.neighbors(0) == frozenset({1})
        assert g.degree(0) == 1
        assert g.num_edges == 2

    def test_edges_iterates_sorted(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_access_bad_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.out_neighbors(7)


class TestLabelQueries:
    def test_vertices_with_label(self, triangle):
        assert triangle.vertices_with_label("A") == (0, 2)
        assert triangle.vertices_with_label("B") == (1,)
        assert triangle.vertices_with_label("Z") == ()

    def test_neighbor_label_counts(self, triangle):
        counts = triangle.neighbor_label_counts(1)
        # Neighbours of 1 are 0 and 2, both labeled A.
        assert counts == {"A": 2}

    def test_neighbor_label_counts_cache_invalidation(self):
        g = StaticGraph(["A", "B", "C"], [(0, 1)])
        assert g.neighbor_label_counts(0) == {"B": 1}
        g.add_edge(2, 0)
        assert g.neighbor_label_counts(0) == {"B": 1, "C": 1}
