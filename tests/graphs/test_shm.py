"""Shared-memory snapshot segments: parity, refcounting, cheap pickles."""

import pickle

import pytest

from repro.datasets import random_instance, toy_instance
from repro.graphs import (
    SharedGraphSnapshot,
    SharedSnapshot,
    attach_shared_snapshot,
    ensure_snapshot,
)


@pytest.fixture(scope="module")
def snapshot():
    _, _, graph = random_instance(
        seed=5, data_vertices=40, data_edges=300, num_labels=4
    )
    return ensure_snapshot(graph)


@pytest.fixture()
def shared(snapshot):
    handle = SharedSnapshot.export(snapshot)
    yield handle
    while handle.refcount > 0:
        handle.close()


class TestAccessorParity:
    """The mapped view answers every accessor exactly like the original.

    This is the contract the process-pool fan-out rests on: a worker
    that attached the segment must observe the same graph, bit for bit.
    """

    def test_fingerprint_matches(self, snapshot, shared):
        assert shared.snapshot().fingerprint == snapshot.fingerprint

    def test_all_accessors_match(self, snapshot, shared):
        view = shared.snapshot()
        assert view.num_vertices == snapshot.num_vertices
        assert view.num_temporal_edges == snapshot.num_temporal_edges
        assert view.min_time == snapshot.min_time
        assert view.max_time == snapshot.max_time
        for v in range(snapshot.num_vertices):
            assert view.label(v) == snapshot.label(v)
            assert list(view.out_neighbors(v)) == list(
                snapshot.out_neighbors(v)
            )
            assert list(view.in_neighbors(v)) == list(
                snapshot.in_neighbors(v)
            )
            for u in snapshot.out_neighbors(v):
                assert list(view.timestamps(v, u)) == list(
                    snapshot.timestamps(v, u)
                )
        labels = {snapshot.label(v) for v in range(snapshot.num_vertices)}
        for label in labels:
            assert list(view.vertices_with_label(label)) == list(
                snapshot.vertices_with_label(label)
            )

    def test_toy_instance_round_trips(self):
        _, _, graph, _, _ = toy_instance()
        snap = ensure_snapshot(graph)
        handle = SharedSnapshot.export(snap)
        try:
            assert handle.snapshot().fingerprint == snap.fingerprint
        finally:
            handle.close()


class TestMemoryFootprint:
    def test_segment_within_1_3x_of_one_copy(self, snapshot, shared):
        # The whole point of the fan-out: K workers attach ONE segment,
        # so total graph memory is <= 1.3x a single copy, not K copies.
        assert shared.nbytes <= 1.3 * snapshot.nbytes

    def test_mapped_view_owns_no_buffers(self, snapshot, shared):
        assert isinstance(shared.snapshot(), SharedGraphSnapshot)
        assert shared.snapshot().owned_nbytes == 0
        assert snapshot.owned_nbytes == snapshot.nbytes > 0


class TestRefcountedUnlink:
    def test_close_to_zero_unlinks(self, snapshot):
        handle = SharedSnapshot.export(snapshot)
        name = handle.name
        assert handle.refcount == 1
        handle.addref()
        assert handle.refcount == 2
        handle.close()
        # Still alive: one reference remains, the segment is mapped.
        assert handle.refcount == 1
        attached = SharedSnapshot.attach(name)
        assert attached.snapshot().fingerprint == snapshot.fingerprint
        attached.close()
        handle.close()
        assert handle.refcount == 0
        with pytest.raises(FileNotFoundError):
            SharedSnapshot.attach(name + "-gone")

    def test_close_is_idempotent_at_zero(self, snapshot):
        handle = SharedSnapshot.export(snapshot)
        handle.close()
        handle.close()  # no-op, no raise
        assert handle.refcount == 0

    def test_accessors_fail_cleanly_after_close(self, snapshot):
        handle = SharedSnapshot.export(snapshot)
        view = handle.snapshot()
        handle.close()
        with pytest.raises(ValueError):
            list(view.out_neighbors(0))


class TestPickleShipsNames:
    """What crosses the process boundary is a segment *name*, not CSR."""

    def test_handle_pickle_is_tiny(self, snapshot, shared):
        blob = pickle.dumps(shared)
        assert len(blob) < 500
        assert pickle.loads(blob).name == shared.name

    def test_snapshot_pickle_is_tiny_and_reattaches(self, snapshot, shared):
        view = shared.snapshot()
        blob = pickle.dumps(view)
        assert len(blob) < 500  # vs ~snapshot.nbytes for a plain pickle
        again = pickle.loads(blob)
        assert isinstance(again, SharedGraphSnapshot)
        assert again.fingerprint == snapshot.fingerprint

    def test_plain_snapshot_pickle_carries_buffers(self, snapshot):
        # The counterfactual: without shm, every worker ships the CSR.
        assert len(pickle.dumps(snapshot)) >= snapshot.nbytes

    def test_attach_shared_snapshot_by_name(self, snapshot, shared):
        view = attach_shared_snapshot(shared.name)
        assert view.fingerprint == snapshot.fingerprint
        assert view.segment_name == shared.name
