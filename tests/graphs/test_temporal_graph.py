"""Tests for the temporal graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graphs import TemporalEdge, TemporalGraph


@pytest.fixture
def small():
    """Two vertex pairs, one with multiple timestamps."""
    return TemporalGraph(
        ["A", "B", "C"],
        [(0, 1, 5), (0, 1, 2), (0, 1, 9), (1, 2, 4)],
    )


class TestConstruction:
    def test_counts(self, small):
        assert small.num_vertices == 3
        assert small.num_temporal_edges == 4
        assert small.num_static_edges == 2

    def test_duplicate_temporal_edge_collapses(self):
        g = TemporalGraph(["A", "B"], [(0, 1, 3), (0, 1, 3)])
        assert g.num_temporal_edges == 1
        assert g.add_edge(0, 1, 3) is False
        assert g.add_edge(0, 1, 4) is True

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            TemporalGraph(["A"], [(0, 0, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            TemporalGraph(["A"], [(0, 1, 1)])

    def test_time_extent(self, small):
        assert small.min_time == 2
        assert small.max_time == 9
        assert small.time_span == 7

    def test_empty_graph_time_extent(self):
        g = TemporalGraph(["A"])
        assert g.min_time is None
        assert g.max_time is None
        assert g.time_span == 0


class TestTimestamps:
    def test_timestamps_sorted(self, small):
        assert small.timestamps(0, 1) == (2, 5, 9)

    def test_timestamps_missing_pair(self, small):
        assert small.timestamps(2, 0) == ()

    def test_has_pair(self, small):
        assert small.has_pair(0, 1)
        assert not small.has_pair(1, 0)

    def test_window_query(self, small):
        assert small.timestamps_in_window(0, 1, 2, 5) == (2, 5)
        assert small.timestamps_in_window(0, 1, 3, 4) == ()
        assert small.timestamps_in_window(0, 1, 0, 100) == (2, 5, 9)

    def test_window_query_missing_pair(self, small):
        assert small.timestamps_in_window(2, 0, 0, 10) == ()


class TestIteration:
    def test_out_edges_expand_timestamps(self, small):
        edges = set(small.out_edges(0))
        assert edges == {
            TemporalEdge(0, 1, 2),
            TemporalEdge(0, 1, 5),
            TemporalEdge(0, 1, 9),
        }

    def test_in_edges(self, small):
        assert set(small.in_edges(2)) == {TemporalEdge(1, 2, 4)}

    def test_out_in_pairs(self, small):
        assert dict(small.out_pairs(0)) == {1: (2, 5, 9)}
        assert dict(small.in_pairs(1)) == {0: (2, 5, 9)}

    def test_edges_by_time_sorted(self, small):
        stream = small.edges_by_time()
        assert [e.t for e in stream] == [2, 4, 5, 9]

    def test_all_edges_count(self, small):
        assert len(list(small.edges())) == small.num_temporal_edges


class TestDerivedViews:
    def test_de_temporal_collapses_multiplicity(self, small):
        static = small.de_temporal()
        assert static.num_edges == 2
        assert static.has_edge(0, 1)
        assert static.labels == small.labels

    def test_de_temporal_cache_invalidated_on_add(self, small):
        assert small.de_temporal().num_edges == 2
        small.add_edge(2, 0, 1)
        assert small.de_temporal().num_edges == 3

    def test_time_prefix_keeps_earliest(self, small):
        half = small.time_prefix(0.5)
        assert half.num_temporal_edges == 2
        assert half.max_time == 4
        assert half.num_vertices == small.num_vertices

    def test_time_prefix_full_and_empty(self, small):
        assert small.time_prefix(1.0).num_temporal_edges == 4
        assert small.time_prefix(0.0).num_temporal_edges == 0

    def test_time_prefix_bad_fraction(self, small):
        with pytest.raises(GraphError):
            small.time_prefix(1.5)

    def test_vertices_with_label(self, small):
        assert small.vertices_with_label("A") == (0,)
        assert small.vertices_with_label("Z") == ()
