"""Tests for the temporal graph substrate."""

import math

import pytest

from repro.errors import GraphError
from repro.graphs import TemporalEdge, TemporalGraph


@pytest.fixture
def small():
    """Two vertex pairs, one with multiple timestamps."""
    return TemporalGraph(
        ["A", "B", "C"],
        [(0, 1, 5), (0, 1, 2), (0, 1, 9), (1, 2, 4)],
    )


class TestConstruction:
    def test_counts(self, small):
        assert small.num_vertices == 3
        assert small.num_temporal_edges == 4
        assert small.num_static_edges == 2

    def test_duplicate_temporal_edge_collapses(self):
        g = TemporalGraph(["A", "B"], [(0, 1, 3), (0, 1, 3)])
        assert g.num_temporal_edges == 1
        assert g.add_edge(0, 1, 3) is False
        assert g.add_edge(0, 1, 4) is True

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            TemporalGraph(["A"], [(0, 0, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            TemporalGraph(["A"], [(0, 1, 1)])

    def test_time_extent(self, small):
        assert small.min_time == 2
        assert small.max_time == 9
        assert small.time_span == 7

    def test_empty_graph_time_extent(self):
        g = TemporalGraph(["A"])
        assert g.min_time is None
        assert g.max_time is None
        assert g.time_span == 0


class TestTimestamps:
    def test_timestamps_sorted(self, small):
        assert small.timestamps(0, 1) == (2, 5, 9)

    def test_timestamps_missing_pair(self, small):
        assert small.timestamps(2, 0) == ()

    def test_has_pair(self, small):
        assert small.has_pair(0, 1)
        assert not small.has_pair(1, 0)

    def test_window_query(self, small):
        assert small.timestamps_in_window(0, 1, 2, 5) == (2, 5)
        assert small.timestamps_in_window(0, 1, 3, 4) == ()
        assert small.timestamps_in_window(0, 1, 0, 100) == (2, 5, 9)

    def test_window_query_missing_pair(self, small):
        assert small.timestamps_in_window(2, 0, 0, 10) == ()


class TestIteration:
    def test_out_edges_expand_timestamps(self, small):
        edges = set(small.out_edges(0))
        assert edges == {
            TemporalEdge(0, 1, 2),
            TemporalEdge(0, 1, 5),
            TemporalEdge(0, 1, 9),
        }

    def test_in_edges(self, small):
        assert set(small.in_edges(2)) == {TemporalEdge(1, 2, 4)}

    def test_out_in_pairs(self, small):
        assert dict(small.out_pairs(0)) == {1: (2, 5, 9)}
        assert dict(small.in_pairs(1)) == {0: (2, 5, 9)}

    def test_edges_by_time_sorted(self, small):
        stream = small.edges_by_time()
        assert [e.t for e in stream] == [2, 4, 5, 9]

    def test_all_edges_count(self, small):
        assert len(list(small.edges())) == small.num_temporal_edges


class TestDerivedViews:
    def test_de_temporal_collapses_multiplicity(self, small):
        static = small.de_temporal()
        assert static.num_edges == 2
        assert static.has_edge(0, 1)
        assert static.labels == small.labels

    def test_de_temporal_cache_invalidated_on_add(self, small):
        assert small.de_temporal().num_edges == 2
        small.add_edge(2, 0, 1)
        assert small.de_temporal().num_edges == 3

    def test_time_prefix_keeps_earliest(self, small):
        half = small.time_prefix(0.5)
        assert half.num_temporal_edges == 2
        assert half.max_time == 4
        assert half.num_vertices == small.num_vertices

    def test_time_prefix_full_and_empty(self, small):
        assert small.time_prefix(1.0).num_temporal_edges == 4
        assert small.time_prefix(0.0).num_temporal_edges == 0

    def test_time_prefix_bad_fraction(self, small):
        with pytest.raises(GraphError):
            small.time_prefix(1.5)

    def test_time_prefix_floors_not_banker_rounds(self):
        # floor(m * f), never int(round(...)): banker's rounding sent
        # 0.5-exact products to the nearest *even* count, so two slice
        # sweeps with adjacent m differed by 2 edges instead of 1.
        graph = TemporalGraph(["A", "B"])
        for t in range(1, 6):  # 5 temporal edges
            graph.add_edge(0, 1, t)
        assert graph.time_prefix(0.5).num_temporal_edges == 2  # floor(2.5)
        assert graph.time_prefix(0.3).num_temporal_edges == 1  # floor(1.5)
        assert graph.time_prefix(0.9).num_temporal_edges == 4  # floor(4.5)

    def test_time_prefix_exp5_slice_sizes(self):
        # Pin the Exp-5 (Fig. 18) data-scale slices: each fraction keeps
        # exactly floor(m * fraction) earliest edges.
        graph = TemporalGraph(["A", "B", "C"])
        t = 0
        for _ in range(67):
            t += 1
            graph.add_edge(t % 2, 2, t)
        m = graph.num_temporal_edges
        assert m == 67
        for fraction in (0.2, 0.25, 0.4, 0.5, 0.6, 0.8, 1.0):
            sliced = graph.time_prefix(fraction)
            expected = math.floor(m * fraction)
            assert sliced.num_temporal_edges == expected
            if expected:
                cutoff = sliced.max_time
                kept = [e for e in graph.edges_by_time()][:expected]
                assert cutoff == kept[-1].t

    def test_vertices_with_label(self, small):
        assert small.vertices_with_label("A") == (0,)
        assert small.vertices_with_label("Z") == ()
