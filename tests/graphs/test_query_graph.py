"""Tests for query graphs and their ordered edge lists."""

import pytest

from repro.datasets import toy_query
from repro.errors import QueryError
from repro.graphs import QueryGraph


@pytest.fixture
def diamond():
    """0->1, 0->2, 1->3, 2->3 with labels A B B C."""
    return QueryGraph(["A", "B", "B", "C"], [(0, 1), (0, 2), (1, 3), (2, 3)])


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_vertices == 4
        assert diamond.num_edges == 4

    def test_empty_vertex_set_rejected(self):
        with pytest.raises(QueryError, match="at least one vertex"):
            QueryGraph([], [])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError, match="self loop"):
            QueryGraph(["A"], [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            QueryGraph(["A", "B"], [(0, 1), (0, 1)])

    def test_antiparallel_edges_allowed(self):
        q = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        assert q.num_edges == 2

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(QueryError, match="out-of-range"):
            QueryGraph(["A"], [(0, 1)])


class TestEdgeOrder:
    def test_edge_lookup_by_index(self, diamond):
        assert diamond.edge(2) == (1, 3)

    def test_edge_index_roundtrip(self, diamond):
        for idx, (u, v) in enumerate(diamond.edges):
            assert diamond.edge_index(u, v) == idx

    def test_missing_edge_index_raises(self, diamond):
        with pytest.raises(QueryError, match="not in query graph"):
            diamond.edge_index(3, 0)

    def test_bad_edge_index_raises(self, diamond):
        with pytest.raises(QueryError, match="out of range"):
            diamond.edge(9)

    def test_incident_edges(self, diamond):
        assert diamond.incident_edges(0) == (0, 1)
        assert diamond.incident_edges(3) == (2, 3)

    def test_edges_share_vertex(self, diamond):
        assert diamond.edges_share_vertex(0, 1) == frozenset({0})
        assert diamond.edges_share_vertex(0, 3) == frozenset()

    def test_antiparallel_edges_share_both(self):
        q = QueryGraph(["A", "B"], [(0, 1), (1, 0)])
        assert q.edges_share_vertex(0, 1) == frozenset({0, 1})


class TestAdjacency:
    def test_directed_neighbors(self, diamond):
        assert diamond.out_neighbors(0) == frozenset({1, 2})
        assert diamond.in_neighbors(3) == frozenset({1, 2})
        assert diamond.neighbors(1) == frozenset({0, 3})

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(0) == 0
        assert diamond.degree(3) == 2

    def test_density(self, diamond):
        assert diamond.density() == pytest.approx(1.0)

    def test_num_distinct_labels(self, diamond):
        assert diamond.num_distinct_labels() == 3

    def test_neighbor_label_counts(self, diamond):
        assert diamond.neighbor_label_counts(0) == {"B": 2}
        assert diamond.neighbor_label_counts(1) == {"A": 1, "C": 1}


class TestConnectivity:
    def test_connected(self, diamond):
        assert diamond.is_weakly_connected()

    def test_disconnected(self):
        q = QueryGraph(["A", "B", "C"], [(0, 1)])
        assert not q.is_weakly_connected()

    def test_single_vertex_connected(self):
        assert QueryGraph(["A"], []).is_weakly_connected()


class TestNamedConstruction:
    def test_from_named(self):
        q, names = QueryGraph.from_named(
            {"x": "A", "y": "B"}, [("x", "y")]
        )
        assert q.edge(0) == (names["x"], names["y"])
        assert q.label(names["y"]) == "B"

    def test_from_named_unknown_vertex(self):
        with pytest.raises(QueryError, match="unknown vertex"):
            QueryGraph.from_named({"x": "A"}, [("x", "zz")])


class TestToyQuery:
    def test_matches_figure_2a(self):
        query, names = toy_query()
        assert query.num_vertices == 5
        assert query.num_edges == 7
        assert query.label(names["u1"]) == "A"
        assert query.label(names["u5"]) == "A"
        assert query.label(names["u4"]) == "D"
        # e2 (index 1) is u2 -> u1
        assert query.edge(1) == (names["u2"], names["u1"])
        assert query.is_weakly_connected()
