"""Tests for label interning and histograms."""

import pytest

from repro.graphs import LabelTable, label_histogram


class TestLabelTable:
    def test_empty_table(self):
        table = LabelTable()
        assert len(table) == 0
        assert "A" not in table

    def test_intern_assigns_dense_codes(self):
        table = LabelTable()
        assert table.intern("A") == 0
        assert table.intern("B") == 1
        assert table.intern("A") == 0  # idempotent
        assert len(table) == 2

    def test_constructor_interns_in_order(self):
        table = LabelTable(["X", "Y", "X", "Z"])
        assert [table.code(lab) for lab in ("X", "Y", "Z")] == [0, 1, 2]

    def test_code_of_unknown_label_raises(self):
        with pytest.raises(KeyError):
            LabelTable().code("missing")

    def test_label_roundtrip(self):
        table = LabelTable(["A", "B"])
        assert table.label(table.code("B")) == "B"

    def test_label_of_unknown_code_raises(self):
        with pytest.raises(IndexError):
            LabelTable(["A"]).label(5)

    def test_contains_and_iter(self):
        table = LabelTable(["A", "B"])
        assert "A" in table and "C" not in table
        assert list(table) == ["A", "B"]

    def test_non_string_labels(self):
        table = LabelTable([1, (2, 3)])
        assert table.code((2, 3)) == 1


class TestLabelHistogram:
    def test_counts(self):
        hist = label_histogram(["A", "B", "A", "A"])
        assert hist["A"] == 3
        assert hist["B"] == 1
        assert hist["C"] == 0

    def test_empty(self):
        assert not label_histogram([])
