"""Tests for temporal-graph statistics."""

import pytest

from repro.datasets import DATASETS, load_dataset
from repro.graphs import TemporalGraph
from repro.graphs.metrics import graph_statistics


class TestGraphStatistics:
    @pytest.fixture
    def small(self):
        return TemporalGraph(
            ["A", "A", "B"],
            [(0, 1, 1), (0, 1, 5), (1, 2, 3), (2, 0, 9)],
        )

    def test_counts(self, small):
        stats = graph_statistics(small)
        assert stats.num_vertices == 3
        assert stats.num_temporal_edges == 4
        assert stats.num_static_edges == 3
        assert stats.time_span == 8

    def test_degrees(self, small):
        stats = graph_statistics(small)
        assert stats.avg_temporal_degree == pytest.approx(4 / 3)
        assert stats.avg_static_degree == pytest.approx(1.0)
        assert stats.max_degree == 2

    def test_multiplicity(self, small):
        stats = graph_statistics(small)
        assert stats.timestamp_multiplicity == pytest.approx(4 / 3)

    def test_label_entropy(self, small):
        stats = graph_statistics(small)
        assert stats.num_labels == 2
        assert stats.label_histogram == {"A": 2, "B": 1}
        # H(2/3, 1/3) ≈ 0.918 bits.
        assert stats.label_entropy == pytest.approx(0.918, abs=0.01)

    def test_uniform_labels_max_entropy(self):
        graph = TemporalGraph(["A", "B", "C", "D"], [(0, 1, 1)])
        stats = graph_statistics(graph)
        assert stats.label_entropy == pytest.approx(2.0)

    def test_empty_graph(self):
        stats = graph_statistics(TemporalGraph([]))
        assert stats.num_vertices == 0
        assert stats.avg_temporal_degree == 0.0
        assert stats.timestamp_multiplicity == 0.0
        assert stats.label_entropy == 0.0

    def test_describe_renders(self, small):
        text = graph_statistics(small).describe()
        assert "|V|=3" in text
        assert "multiplicity=" in text


class TestStandInsTrackTableII:
    @pytest.mark.parametrize("key", ("MO", "UB", "SU", "WT"))
    def test_avg_degree_close_to_catalog(self, key):
        graph = load_dataset(key, seed=0, plant_patterns=False)
        stats = graph_statistics(graph)
        assert stats.avg_temporal_degree == pytest.approx(
            DATASETS[key].avg_degree, rel=0.2
        )

    def test_multiplicity_tracks_catalog_ratio(self):
        spec = DATASETS["EE"]
        graph = load_dataset("EE", seed=0, plant_patterns=False)
        stats = graph_statistics(graph)
        expected = spec.temporal_edges / spec.static_edges
        assert stats.timestamp_multiplicity == pytest.approx(
            expected, rel=0.5
        )
