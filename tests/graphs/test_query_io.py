"""Tests for pattern (query + constraints) JSON serialisation."""

import json

import pytest

from repro.datasets import toy_constraints, toy_query
from repro.errors import QueryError
from repro.graphs import (
    QueryGraph,
    TemporalConstraints,
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    save_pattern,
)


@pytest.fixture
def pattern():
    query, _ = toy_query()
    return query, toy_constraints()


class TestRoundTrip:
    def test_dict_roundtrip(self, pattern):
        query, constraints = pattern
        data = pattern_to_dict(query, constraints)
        query2, constraints2 = pattern_from_dict(data)
        assert query2.labels == query.labels
        assert query2.edges == query.edges
        assert constraints2 == constraints

    def test_file_roundtrip(self, pattern, tmp_path):
        query, constraints = pattern
        path = tmp_path / "pattern.json"
        save_pattern(query, constraints, path)
        query2, constraints2 = load_pattern(path)
        assert query2.edges == query.edges
        assert constraints2 == constraints
        # The file is plain, valid JSON.
        with open(path) as handle:
            json.load(handle)

    def test_edge_labels_roundtrip(self, tmp_path):
        query = QueryGraph(
            ["A", "B"], [(0, 1), (1, 0)], edge_labels=["wire", None]
        )
        tc = TemporalConstraints([(0, 1, 5)], num_edges=2)
        path = tmp_path / "p.json"
        save_pattern(query, tc, path)
        query2, _ = load_pattern(path)
        assert query2.edge_labels == ("wire", None)


class TestMalformedInput:
    def test_not_an_object(self):
        with pytest.raises(QueryError, match="object"):
            pattern_from_dict([1, 2, 3])

    def test_missing_keys(self):
        with pytest.raises(QueryError, match="missing required key"):
            pattern_from_dict({"vertices": []})

    def test_vertex_without_label(self):
        with pytest.raises(QueryError, match="label"):
            pattern_from_dict({"vertices": [{}], "edges": []})

    def test_edge_without_endpoints(self):
        with pytest.raises(QueryError, match="source"):
            pattern_from_dict(
                {"vertices": [{"label": "A"}], "edges": [{"source": 0}]}
            )

    def test_constraint_without_gap(self):
        with pytest.raises(QueryError, match="gap"):
            pattern_from_dict(
                {
                    "vertices": [{"label": "A"}, {"label": "B"}],
                    "edges": [
                        {"source": 0, "target": 1},
                        {"source": 1, "target": 0},
                    ],
                    "constraints": [{"earlier": 0, "later": 1}],
                }
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(QueryError, match="not found"):
            load_pattern(tmp_path / "nope.json")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(QueryError, match="invalid JSON"):
            load_pattern(path)

    def test_constraints_optional(self):
        query, tc = pattern_from_dict(
            {
                "vertices": [{"label": "A"}, {"label": "B"}],
                "edges": [{"source": 0, "target": 1}],
            }
        )
        assert len(tc) == 0
        assert query.num_edges == 1
