"""Tests for the compiled CSR graph snapshot (builder → freeze lifecycle).

The snapshot is the immutable data plane every matcher runs against; its
accessor surface must agree with the mutable dict-backed builder on every
observable, pickle compactly, and carry a stable content fingerprint.
"""

import pickle

import pytest

from repro.datasets import random_temporal_graph
from repro.errors import GraphError
from repro.graphs import (
    GraphSnapshot,
    TemporalGraph,
    compile_snapshot,
    ensure_snapshot,
    snapshot_compile_count,
)


@pytest.fixture
def graph():
    """Small labeled graph with parallel edges and edge labels."""
    g = TemporalGraph(["A", "B", "A", "C"])
    g.add_edge(0, 1, 5, label="wire")
    g.add_edge(0, 1, 3, label="cash")
    g.add_edge(0, 1, 9)
    g.add_edge(1, 2, 4)
    g.add_edge(2, 0, 7)
    g.add_edge(3, 1, 2, label="wire")
    return g


@pytest.fixture
def snap(graph):
    return compile_snapshot(graph)


class TestAccessorEquivalence:
    """Every accessor agrees with the dict-backed builder."""

    def test_scalar_surface(self, graph, snap):
        assert snap.num_vertices == graph.num_vertices
        assert snap.num_temporal_edges == graph.num_temporal_edges
        assert snap.num_static_edges == graph.num_static_edges
        assert snap.min_time == graph.min_time
        assert snap.max_time == graph.max_time
        assert snap.time_span == graph.time_span
        assert snap.labels == graph.labels
        assert snap.has_edge_labels == graph.has_edge_labels
        assert list(snap.vertices()) == list(graph.vertices())

    def test_labels_and_index(self, graph, snap):
        for v in graph.vertices():
            assert snap.label(v) == graph.label(v)
        for lab in set(graph.labels) | {"missing"}:
            assert sorted(snap.vertices_with_label(lab)) == sorted(
                graph.vertices_with_label(lab)
            )

    def test_pair_and_timestamp_surface(self, graph, snap):
        for u in graph.vertices():
            for v in graph.vertices():
                assert snap.has_pair(u, v) == graph.has_pair(u, v)
                assert snap.timestamps(u, v) == graph.timestamps(u, v)
                assert list(snap.timestamps_list(u, v)) == list(
                    graph.timestamps_list(u, v)
                )
                assert snap.timestamps_in_window(
                    u, v, 3, 7
                ) == graph.timestamps_in_window(u, v, 3, 7)
                for lab in ("wire", "cash", "missing"):
                    assert tuple(
                        snap.timestamps_with_label(u, v, lab)
                    ) == tuple(graph.timestamps_with_label(u, v, lab))
                    for lo, hi in ((2, 5), (4.5, 9.5), (float("-inf"), 4)):
                        assert tuple(
                            snap.timestamps_with_label_in_window(
                                u, v, lab, lo, hi
                            )
                        ) == tuple(
                            graph.timestamps_with_label_in_window(
                                u, v, lab, lo, hi
                            )
                        )

    def test_in_window_accessors_bisect_correctly(self, graph, snap):
        # Pair (0, 1) has times (3, 5, 9) with labels cash/wire/None.
        for view in (graph, snap):
            assert tuple(view.timestamps_in_window(0, 1, 2.5, 5.5)) == (3, 5)
            assert tuple(
                view.timestamps_with_label_in_window(0, 1, "wire", 0, 100)
            ) == (5,)
            assert tuple(
                view.timestamps_with_label_in_window(0, 1, "wire", 6, 100)
            ) == ()
            assert tuple(
                view.timestamps_with_label_in_window(0, 1, "missing", 0, 100)
            ) == ()
            assert tuple(
                view.timestamps_with_label_in_window(2, 2, "wire", 0, 100)
            ) == ()

    def test_edge_labels(self, graph, snap):
        for edge in graph.edges():
            assert snap.edge_label(edge.u, edge.v, edge.t) == graph.edge_label(
                edge.u, edge.v, edge.t
            )
        assert snap.edge_label(0, 1, 9) is None

    def test_adjacency_iteration(self, graph, snap):
        for v in graph.vertices():
            assert sorted(snap.out_neighbor_ids(v)) == sorted(
                graph.out_neighbor_ids(v)
            )
            assert sorted(snap.in_neighbor_ids(v)) == sorted(
                graph.in_neighbor_ids(v)
            )
            assert {u: list(ts) for u, ts in snap.out_items(v)} == {
                u: list(ts) for u, ts in graph.out_items(v)
            }
            assert {u: list(ts) for u, ts in snap.in_items(v)} == {
                u: list(ts) for u, ts in graph.in_items(v)
            }
            assert dict(snap.out_pairs(v)) == dict(graph.out_pairs(v))
            assert dict(snap.in_pairs(v)) == dict(graph.in_pairs(v))
            assert sorted(snap.out_edges(v)) == sorted(graph.out_edges(v))
            assert sorted(snap.in_edges(v)) == sorted(graph.in_edges(v))
        assert sorted(snap.edges()) == sorted(graph.edges())
        assert snap.edges_by_time() == graph.edges_by_time()

    def test_neighbor_ids_are_sorted(self, snap):
        for v in snap.vertices():
            out = list(snap.out_neighbor_ids(v))
            assert out == sorted(out)

    def test_static_surface(self, graph, snap):
        static = graph.de_temporal()
        for v in graph.vertices():
            assert snap.out_degree(v) == static.out_degree(v)
            assert snap.in_degree(v) == static.in_degree(v)
            assert sorted(snap.out_neighbors(v)) == sorted(
                static.out_neighbors(v)
            )
            assert sorted(snap.in_neighbors(v)) == sorted(
                static.in_neighbors(v)
            )
            assert snap.neighbor_label_counts(v) == (
                static.neighbor_label_counts(v)
            )

    def test_static_view_is_self(self, snap):
        assert snap.static_view() is snap

    def test_de_temporal_shim_materialises_static_graph(self, graph, snap):
        shim = snap.de_temporal()
        static = graph.de_temporal()
        assert shim.num_edges == static.num_edges
        for v in graph.vertices():
            assert sorted(shim.out_neighbors(v)) == sorted(
                static.out_neighbors(v)
            )

    def test_random_graph_equivalence(self):
        graph = random_temporal_graph(20, 120, ["A", "B", "C"], seed=7)
        snap = compile_snapshot(graph)
        assert sorted(snap.edges()) == sorted(graph.edges())
        for u in graph.vertices():
            for v in graph.vertices():
                assert snap.timestamps(u, v) == graph.timestamps(u, v)

    def test_vertex_bounds_checked(self, snap):
        with pytest.raises(GraphError, match="out of range"):
            snap.label(99)
        with pytest.raises(GraphError, match="out of range"):
            snap.timestamps_list(0, -1)


class TestEmptyGraphs:
    def test_no_edges(self):
        snap = compile_snapshot(TemporalGraph(["A", "B"]))
        assert snap.num_temporal_edges == 0
        assert snap.min_time is None
        assert snap.time_span == 0
        assert not snap.has_pair(0, 1)
        assert list(snap.timestamps_list(0, 1)) == []
        assert snap.edges_by_time() == []

    def test_no_vertices(self):
        snap = compile_snapshot(TemporalGraph([]))
        assert snap.num_vertices == 0
        assert list(snap.vertices()) == []


class TestFreezeLifecycle:
    def test_freeze_is_cached(self, graph):
        assert graph.freeze() is graph.freeze()

    def test_add_edge_invalidates_frozen(self, graph):
        first = graph.freeze()
        graph.add_edge(3, 0, 11)
        second = graph.freeze()
        assert second is not first
        assert second.num_temporal_edges == first.num_temporal_edges + 1

    def test_duplicate_add_edge_keeps_cache(self, graph):
        graph.add_edge(0, 1, 5, label="wire")  # no-op duplicate
        first = graph.freeze()
        assert graph.add_edge(0, 1, 5, label="wire") is False
        assert graph.freeze() is first

    def test_ensure_snapshot_passthrough(self, graph):
        snap = graph.freeze()
        assert ensure_snapshot(snap) is snap
        assert ensure_snapshot(graph) is snap
        assert snap.freeze() is snap

    def test_compile_count_probe(self, graph):
        before = snapshot_compile_count()
        graph.freeze()
        graph.freeze()
        assert snapshot_compile_count() == before + 1
        compile_snapshot(graph)
        assert snapshot_compile_count() == before + 2


class TestEdgesByTimeCache:
    def test_builder_caches_and_invalidates(self):
        g = TemporalGraph(["A", "B"], [(0, 1, 3), (1, 0, 1)])
        stream = g.edges_by_time()
        assert [e.t for e in stream] == [1, 3]
        assert g.edges_by_time() is stream  # cached
        g.add_edge(0, 1, 2)
        fresh = g.edges_by_time()
        assert fresh is not stream
        assert [e.t for e in fresh] == [1, 2, 3]

    def test_snapshot_caches(self, snap):
        assert snap.edges_by_time() is snap.edges_by_time()


class TestFingerprint:
    def test_stable_across_recompiles(self, graph):
        assert (
            compile_snapshot(graph).fingerprint
            == compile_snapshot(graph).fingerprint
        )

    def test_insertion_order_independent(self):
        a = TemporalGraph(["A", "B"])
        a.add_edge(0, 1, 5)
        a.add_edge(0, 1, 3)
        b = TemporalGraph(["A", "B"])
        b.add_edge(0, 1, 3)
        b.add_edge(0, 1, 5)
        assert a.freeze().fingerprint == b.freeze().fingerprint

    def test_sensitive_to_content(self, graph):
        base = graph.freeze().fingerprint
        graph.add_edge(3, 0, 99)
        assert graph.freeze().fingerprint != base

    def test_sensitive_to_edge_labels(self):
        a = TemporalGraph(["A", "B"])
        a.add_edge(0, 1, 5, label="wire")
        b = TemporalGraph(["A", "B"])
        b.add_edge(0, 1, 5)
        assert a.freeze().fingerprint != b.freeze().fingerprint


class TestPickling:
    def test_roundtrip_preserves_surface(self, graph, snap):
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, GraphSnapshot)
        assert clone.fingerprint == snap.fingerprint
        assert sorted(clone.edges()) == sorted(snap.edges())
        for v in snap.vertices():
            assert {u: list(ts) for u, ts in clone.out_items(v)} == {
                u: list(ts) for u, ts in snap.out_items(v)
            }
            assert clone.neighbor_label_counts(v) == (
                snap.neighbor_label_counts(v)
            )
        for edge in snap.edges():
            assert clone.edge_label(edge.u, edge.v, edge.t) == (
                snap.edge_label(edge.u, edge.v, edge.t)
            )

    def test_lazy_caches_do_not_travel(self):
        graph = random_temporal_graph(30, 300, ["A", "B"], seed=3)
        snap = compile_snapshot(graph)
        assert snap.nbytes > 0
        snap.edges_by_time()
        _ = snap.fingerprint
        bare = len(pickle.dumps(compile_snapshot(graph)))
        warmed = len(pickle.dumps(snap))
        # Lazy caches (edge stream, fingerprint, label signatures) are
        # rebuilt on load, never shipped.
        assert warmed == bare
