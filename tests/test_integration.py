"""Dataset-level integration tests.

The unit suites verify matchers on small instances against the oracle;
these tests exercise the full pipeline — catalog stand-in generation,
Figure-12 workloads, the engine — and cross-check the three TCSM
algorithms (plus one independently structured baseline) against each
other on realistic graphs where the oracle is too slow.
"""

import pytest

from repro.core import MatchOptions, count_matches, find_matches, is_valid_match
from repro.datasets import load_dataset, paper_workloads


@pytest.fixture(scope="module")
def graph():
    return load_dataset("CM", scale=0.03, seed=5)


class TestWorkloadGrid:
    @pytest.mark.parametrize(
        "workload", list(paper_workloads()), ids=lambda w: f"{w[0]}-{w[1]}"
    )
    def test_tcsm_algorithms_agree(self, graph, workload):
        _, _, query, constraints = workload
        counts = {
            algo: count_matches(
                query, constraints, graph, algorithm=algo,
                options=MatchOptions(time_budget=30),
            )
            for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
        }
        assert len(set(counts.values())) == 1, counts

    def test_cross_family_agreement_on_default_workload(self, graph):
        # graphflow shares no search code with the TCSM matchers (stream
        # substrate vs TCQ+ DFS): agreement is strong evidence both are
        # right at this scale.
        for name, tc_name, query, constraints in paper_workloads():
            if (name, tc_name) != ("q1", "tc2"):
                continue
            eve = find_matches(
                query, constraints, graph, algorithm="tcsm-eve",
                options=MatchOptions(time_budget=30),
            )
            gf = find_matches(
                query, constraints, graph, algorithm="graphflow",
                options=MatchOptions(time_budget=60),
            )
            assert not eve.stats.budget_exhausted
            assert not gf.stats.budget_exhausted
            assert set(eve.matches) == set(gf.matches)
            for match in eve.matches:
                assert is_valid_match(query, constraints, graph, match)

    def test_match_objects_well_formed(self, graph):
        for name, tc_name, query, constraints in paper_workloads():
            if name != "q2":
                continue
            result = find_matches(
                query, constraints, graph, algorithm="tcsm-eve",
                options=MatchOptions(time_budget=30),
            )
            for match in result.matches:
                assert is_valid_match(query, constraints, graph, match)
