"""The shipped pattern files must stay loadable and in sync with the code."""

from pathlib import Path

import pytest

from repro.datasets import paper_workloads
from repro.graphs import load_pattern

PATTERNS = Path(__file__).resolve().parent.parent / "patterns"


class TestShippedPatterns:
    def test_all_nine_present(self):
        names = {p.name for p in PATTERNS.glob("*.json")}
        expected = {
            f"q{q}_tc{t}.json" for q in (1, 2, 3) for t in (1, 2, 3)
        }
        assert names == expected

    @pytest.mark.parametrize(
        "workload", list(paper_workloads()), ids=lambda w: f"{w[0]}-{w[1]}"
    )
    def test_files_match_code(self, workload):
        qname, tname, query, constraints = workload
        loaded_query, loaded_tc = load_pattern(
            PATTERNS / f"{qname}_{tname}.json"
        )
        assert loaded_query.labels == query.labels
        assert loaded_query.edges == query.edges
        assert loaded_tc == constraints
