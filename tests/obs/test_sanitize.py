"""Runtime sanitizer tests: env flag, write barrier, lock assertions."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core import MatchOptions, find_matches
from repro.datasets import toy_instance
from repro.graphs import (
    GraphSnapshot,
    SnapshotWriteBarrier,
    snapshot_write_barrier,
)
from repro.obs import SanitizerError, assert_lock_held, sanitize_enabled


@pytest.fixture()
def snap():
    _, _, graph, _, _ = toy_instance()
    return graph.freeze()


class TestEnvFlag:
    def test_disabled_by_default(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["0", "", "false", "no", "off", "OFF"])
    def test_falsy_values_disable(self, monkeypatch, value) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_enable(self, monkeypatch, value) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled()


class TestWriteBarrier:
    def test_wrapping_preserves_reads(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        assert isinstance(barrier, GraphSnapshot)
        assert barrier.fingerprint == snap.fingerprint
        assert sorted(barrier.edges()) == sorted(snap.edges())
        assert barrier.num_vertices == snap.num_vertices

    def test_wrapping_is_idempotent_and_cached(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        assert snapshot_write_barrier(barrier) is barrier
        assert snapshot_write_barrier(snap) is barrier

    def test_attribute_write_raises(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        with pytest.raises(SanitizerError, match="frozen after"):
            barrier._labels = ()

    def test_attribute_delete_raises(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        with pytest.raises(SanitizerError):
            del barrier._labels

    def test_lazy_caches_still_materialise(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        assert barrier.fingerprint  # writes _fingerprint through the barrier
        assert barrier.edges_by_time  # writes _edges_by_time
        assert barrier.neighbor_label_counts(0)  # fills the _nlc slot

    def test_pickle_roundtrip_stays_wrapped(self, snap) -> None:
        barrier = snapshot_write_barrier(snap)
        clone = pickle.loads(pickle.dumps(barrier))
        assert isinstance(clone, SnapshotWriteBarrier)
        assert clone.fingerprint == snap.fingerprint
        with pytest.raises(SanitizerError):
            clone._labels = ()

    def test_no_recompilation_on_wrap(self, snap) -> None:
        from repro.graphs import snapshot_compile_count

        before = snapshot_compile_count()
        snapshot_write_barrier(snap)
        assert snapshot_compile_count() == before


class TestEngineWiring:
    def test_sanitize_option_wraps_snapshot_transparently(self) -> None:
        query, constraints, graph, _, _ = toy_instance()
        snap = graph.freeze()
        plain = find_matches(query, constraints, snap, "tcsm-eve")
        sanitized = find_matches(
            query,
            constraints,
            snap,
            "tcsm-eve",
            options=MatchOptions(sanitize=True),
        )
        assert sorted(sanitized.matches) == sorted(plain.matches)

    def test_env_flag_wraps_snapshot(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        query, constraints, graph, _, _ = toy_instance()
        snap = graph.freeze()
        result = find_matches(query, constraints, snap, "tcsm-eve")
        assert result.matches

    def test_sanitize_excluded_from_canonical_hash(self) -> None:
        assert (
            MatchOptions(sanitize=True).canonical_hash()
            == MatchOptions().canonical_hash()
        )


class TestAssertLockHeld:
    def test_noop_when_disabled(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert_lock_held(threading.Lock(), "unheld")  # does not raise

    def test_raises_on_unheld_lock(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizerError, match="unheld"):
            assert_lock_held(threading.Lock(), "unheld")

    def test_passes_on_held_lock(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        lock = threading.Lock()
        with lock:
            assert_lock_held(lock, "held")

    def test_rlock_ownership_is_exact(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        rlock = threading.RLock()
        with rlock:
            assert_lock_held(rlock, "held")
        with pytest.raises(SanitizerError):
            assert_lock_held(rlock, "released")

    def test_sanitizer_error_is_assertion_error(self) -> None:
        assert issubclass(SanitizerError, AssertionError)
