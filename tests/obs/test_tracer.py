"""Tracer semantics: nesting, threading, annotation, the null tracer."""

from __future__ import annotations

import threading

from repro.obs import NULL_TRACER, NullTracer, Span, TraceSink, Tracer


class FakeClock:
    """Deterministic monotonic clock: each call advances by one tick."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_records_a_finished_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("prepare", algorithm="x"):
            pass
        (span,) = tracer.spans()
        assert span.name == "prepare"
        assert span.attrs == {"algorithm": "x"}
        assert span.duration > 0
        assert span.parent_id is None
        assert span.thread == 0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        by_name = {span.name: span for span in tracer.spans()}
        outer = by_name["outer"]
        assert by_name["inner-a"].parent_id == outer.span_id
        assert by_name["inner-b"].parent_id == outer.span_id
        # Siblings, not grandchildren.
        assert by_name["inner-b"].parent_id != by_name["inner-a"].span_id

    def test_spans_ordered_by_start(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.spans()] == ["first", "second"]

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("enumerate", algorithm="x") as span:
            span.annotate(matches=7)
        (span,) = tracer.spans()
        assert span.attrs == {"algorithm": "x", "matches": 7}

    def test_exception_inside_span_is_recorded_and_reraised(self):
        tracer = Tracer()
        try:
            with tracer.span("enumerate"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_iter_spans_matches_name_and_prefix(self):
        tracer = Tracer()
        with tracer.span("candidate-filter:ldf"):
            pass
        with tracer.span("candidate-filter:nlf"):
            pass
        with tracer.span("enumerate"):
            pass
        names = [s.name for s in tracer.iter_spans("candidate-filter")]
        assert names == ["candidate-filter:ldf", "candidate-filter:nlf"]
        assert [s.name for s in tracer.iter_spans("enumerate")] == ["enumerate"]
        # "candidate" alone is not a prefix match ("candidate:" required).
        assert list(tracer.iter_spans("candidate")) == []

    def test_total_seconds_sums_matching_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("partition:0/2"):
            pass
        with tracer.span("partition:1/2"):
            pass
        assert tracer.total_seconds("partition") == sum(
            s.duration for s in tracer.spans()
        )

    def test_len_counts_finished_spans_only(self):
        tracer = Tracer()
        assert len(tracer) == 0
        with tracer.span("outer"):
            assert len(tracer) == 0  # still open
        assert len(tracer) == 1

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            with tracer.span(f"partition:{label}"):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(str(i),)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == 2
        # Concurrent spans on distinct threads are roots, never nested.
        assert all(span.parent_id is None for span in spans)
        assert {span.thread for span in spans} == {0, 1}

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def work() -> None:
            for _ in range(25):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in tracer.spans()]
        assert len(ids) == 100
        assert len(set(ids)) == 100


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans() == ()

    def test_span_returns_shared_noop(self):
        first = NULL_TRACER.span("prepare", algorithm="x")
        second = NULL_TRACER.span("enumerate")
        assert first is second  # one shared object: zero per-span allocation
        with first as handle:
            handle.annotate(matches=3)  # must be accepted and dropped
        assert NULL_TRACER.spans() == ()

    def test_both_tracers_satisfy_the_sink_protocol(self):
        assert isinstance(Tracer(), TraceSink)
        assert isinstance(NullTracer(), TraceSink)

    def test_span_dataclass_duration(self):
        span = Span(
            span_id=0, parent_id=None, name="x", start=1.0, end=3.5, thread=0
        )
        assert span.duration == 2.5
