"""Exporters: Chrome trace-event JSON round-trips; the text span tree."""

from __future__ import annotations

import json
import threading

from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    render_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)


def _traced_query() -> Tracer:
    """A representative trace: prepare -> filter, then enumerate."""
    tracer = Tracer()
    with tracer.span("stn-closure", constraints=3):
        pass
    with tracer.span("prepare", algorithm="tcsm-eve"):
        with tracer.span("candidate-filter:ldf", considered=10, pruned=4):
            pass
    with tracer.span("enumerate", algorithm="tcsm-eve") as span:
        span.annotate(matches=2)
    return tracer


class TestChromeExport:
    def test_round_trips_through_json(self, tmp_path):
        tracer = _traced_query()
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(tracer)
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == len(tracer.spans())

    def test_event_shape(self):
        events = chrome_trace_events(_traced_query())
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["tid"], int)
        by_name = {event["name"]: event for event in events}
        filt = by_name["candidate-filter:ldf"]
        assert filt["cat"] == "candidate-filter"
        assert filt["args"]["considered"] == 10
        assert filt["args"]["parent_id"] == by_name["prepare"]["args"]["span_id"]
        assert by_name["enumerate"]["args"]["matches"] == 2

    def test_non_scalar_attrs_are_stringified(self):
        tracer = Tracer()
        with tracer.span("prepare", shape=(2, 3), algorithm="x"):
            pass
        (event,) = chrome_trace_events(tracer)
        assert event["args"]["shape"] == "(2, 3)"
        assert event["args"]["algorithm"] == "x"
        json.dumps(event)  # everything JSON-serialisable

    def test_spans_well_nested_per_thread(self):
        """Within each tid, events nest like brackets: children inside parents."""
        tracer = _traced_query()

        def work() -> None:
            with tracer.span("partition:0/1"):
                with tracer.span("inner"):
                    pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        events = chrome_trace_events(tracer)
        by_tid: dict[int, list[dict]] = {}
        for event in events:
            by_tid.setdefault(event["tid"], []).append(event)
        assert len(by_tid) == 2
        for tid_events in by_tid.values():
            tid_events.sort(key=lambda e: e["ts"])
            open_stack: list[dict] = []
            for event in tid_events:
                while open_stack and (
                    event["ts"] >= open_stack[-1]["ts"] + open_stack[-1]["dur"]
                ):
                    open_stack.pop()
                if open_stack:  # strictly inside the enclosing interval
                    parent = open_stack[-1]
                    assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]
                    assert event["args"]["parent_id"] == parent["args"]["span_id"]
                open_stack.append(event)

    def test_null_tracer_exports_empty(self):
        assert chrome_trace_events(NULL_TRACER) == []
        assert to_chrome_trace(NULL_TRACER)["traceEvents"] == []


class TestSpanTree:
    def test_renders_hierarchy_with_attrs(self):
        text = render_span_tree(_traced_query())
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("stn-closure")
        assert lines[1].startswith("prepare")
        assert lines[2].startswith("  candidate-filter:ldf")  # indented child
        assert "[considered=10 pruned=4]" in lines[2]
        assert lines[3].startswith("enumerate")
        assert "matches=2" in lines[3]

    def test_empty_tracer_renders_placeholder(self):
        assert render_span_tree(Tracer()) == "(no spans recorded)"
        assert render_span_tree(NULL_TRACER) == "(no spans recorded)"
