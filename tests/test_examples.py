"""Execute the example scripts end to end (they are part of the API docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "tcsm-eve: 2 matches" in out
        assert "['v1', 'v2', 'v3', 'v7', 'v11']" in out

    def test_fraud_detection(self, capsys):
        out = run_example("fraud_detection.py", capsys)
        # The fast ring is flagged; the slow look-alike only structurally.
        assert "temporal-constraint matching flags: ['fast_broker']" in out
        assert "slow_broker" in out  # appears among structural matches
        assert "false positive(s) eliminated" in out

    def test_telecom_bursts(self, capsys):
        out = run_example("telecom_bursts.py", capsys)
        assert "coordinated burst: 1 match(es)" in out
        assert "brushing star: 1 match(es)" in out

    def test_edge_labeled_transfers(self, capsys):
        out = run_example("edge_labeled_transfers.py", capsys)
        assert "channel-aware pattern:" in out
        # The planted laundering hop is among the matches.
        assert "acct3 -(cash)-> acct7" in out
        assert "would be noise" in out

    def test_compare_algorithms_compiles(self):
        # Running the full comparison takes ~15 s (SJ-Tree's budget); the
        # test suite only checks the script is importable/parseable.
        source = (EXAMPLES / "compare_algorithms.py").read_text()
        compile(source, "compare_algorithms.py", "exec")

    @pytest.mark.slow
    def test_compare_algorithms_runs(self, capsys):
        out = run_example("compare_algorithms.py", capsys, argv=["CM"])
        assert "tcsm-eve" in out
