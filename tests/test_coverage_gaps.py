"""Consolidated tests for paths the per-module suites leave uncovered."""

import doctest

import pytest

from repro.core import MatchOptions, RunContext, find_matches
from repro.datasets import toy_instance
from repro.experiments import render_series
from repro.graphs import TemporalGraph


class TestDocstringExamples:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs.labels",
            "repro.graphs.builders",
            "repro.graphs.query_graph",
        ],
    )
    def test_doctests_pass(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0  # the examples actually ran


class TestAdjacencyViews:
    def test_items_reflect_graph(self):
        graph = TemporalGraph(["A", "B"], [(0, 1, 3), (0, 1, 5)])
        assert dict(graph.out_items(0)) == {1: [3, 5]}
        assert dict(graph.in_items(1)) == {0: [3, 5]}

    def test_neighbor_id_views_are_live(self):
        graph = TemporalGraph(["A", "B", "C"], [(0, 1, 1)])
        view = graph.out_neighbor_ids(0)
        assert set(view) == {1}
        graph.add_edge(0, 2, 2)
        assert set(view) == {1, 2}  # dict view, not a copy


class TestRenderSeriesFormatting:
    def test_custom_y_format(self):
        text = render_series(
            "x", [1, 2], {"s": [0.5, 1.5]},
            y_format=lambda v: f"{v:.1f}s",
        )
        assert "0.5s" in text and "1.5s" in text

    def test_default_format_stringifies(self):
        text = render_series("x", [1], {"s": [42]})
        assert "42" in text


class TestEngineCombinations:
    def test_limit_with_collect_false(self):
        query, tc, graph, _, _ = toy_instance()
        result = find_matches(
            query, tc, graph,
            options=MatchOptions(limit=1, collect_matches=False),
        )
        assert result.matches == []
        assert result.stats.matches == 1
        assert result.stats.budget_exhausted

    def test_tighten_with_baseline(self):
        query, tc, graph, _, _ = toy_instance()
        result = find_matches(
            query, tc, graph, algorithm="ri-ds",
            options=MatchOptions(tighten=True),
        )
        assert result.num_matches == 2

    def test_stats_object_reused_across_runs(self):
        from repro.core import SearchStats, create_matcher

        query, tc, graph, _, _ = toy_instance()
        matcher = create_matcher("tcsm-eve", query, tc, graph)
        matcher.prepare()
        stats = SearchStats()
        first = sum(1 for _ in matcher.run(RunContext(stats=stats)))
        second = sum(1 for _ in matcher.run(RunContext(stats=stats)))
        assert first == second == 2
        # Counters accumulate across runs on the same stats object.
        assert stats.matches == 4


class TestMatcherReuse:
    def test_prepare_idempotent(self):
        from repro.core import create_matcher

        query, tc, graph, _, _ = toy_instance()
        for algo in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"):
            matcher = create_matcher(algo, query, tc, graph)
            matcher.prepare()
            snapshot = (
                matcher.tcq if algo == "tcsm-v2v" else matcher.tcq_plus
            )
            matcher.prepare()
            after = (
                matcher.tcq if algo == "tcsm-v2v" else matcher.tcq_plus
            )
            assert snapshot is after  # not rebuilt

    def test_run_restarts_cleanly(self):
        from repro.core import create_matcher

        query, tc, graph, _, _ = toy_instance()
        matcher = create_matcher("tcsm-eve", query, tc, graph)
        a = list(matcher.run())
        b = list(matcher.run())
        assert a == b

    def test_abandoned_generator_leaves_no_corruption(self):
        from repro.core import create_matcher

        query, tc, graph, _, _ = toy_instance()
        matcher = create_matcher("tcsm-eve", query, tc, graph)
        gen = matcher.run()
        next(gen)  # take one match, abandon the generator
        gen.close()
        assert len(list(matcher.run())) == 2
