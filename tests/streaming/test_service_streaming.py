"""Streaming through TCSMService: JSONL ops, metrics, and lifecycle.

The service face of the streaming subsystem: ``subscribe`` / ``ingest``
/ ``poll`` / ``unsubscribe`` requests, per-graph engine creation seeded
zero-copy from the registered snapshot, service-wide subscription ids,
metric counters, and trace retention for ingest batches.
"""

import io
import json
from collections import Counter

import pytest

from repro.core import find_matches
from repro.datasets import random_instance
from repro.errors import (
    StreamingError,
    UnknownGraphError,
    UnknownSubscriptionError,
)
from repro.graphs import pattern_to_dict
from repro.service import ServiceConfig, TCSMService, serve_stdio
from repro.streaming import SubscriptionOptions

INSTANCE = dict(
    query_vertices=3,
    query_edges=3,
    num_constraints=2,
    max_gap=25,
    data_vertices=8,
    data_edges=150,
    num_labels=2,
    max_time=40,
)


@pytest.fixture()
def instance():
    return random_instance(seed=2, **INSTANCE)


@pytest.fixture()
def service(instance):
    _, _, graph = instance
    with TCSMService(ServiceConfig(max_workers=2)) as svc:
        svc.load_graph("g", graph)
        yield svc


def _split(graph, keep=0.6):
    edges = list(graph.edges_by_time())
    cut = int(len(edges) * keep)
    return edges[:cut], edges[cut:]


@pytest.fixture()
def base_service(instance):
    """Service seeded with only the first 60% of the instance's edges,
    so ingesting the rest produces genuinely new edges and emissions."""
    _, _, graph = instance
    base_edges, live_edges = _split(graph)
    base = graph.__class__(graph.labels)
    for u, v, t in base_edges:
        base.add_edge(u, v, t)
    with TCSMService(ServiceConfig(max_workers=2)) as svc:
        svc.load_graph("g", base)
        yield svc, live_edges


class TestPythonApi:
    def test_subscribe_ingest_poll_roundtrip(self, instance):
        query, constraints, graph = instance
        base_edges, live_edges = _split(graph)
        base = graph.__class__(graph.labels)
        for u, v, t in base_edges:
            base.add_edge(u, v, t)
        with TCSMService(ServiceConfig(max_workers=2)) as svc:
            svc.load_graph("g", base)
            sub = svc.stream_subscribe("g", query, constraints)
            assert sub.id == "s1"
            report, trace_id = svc.stream_ingest("g", live_edges)
            assert report.new_edges == len(live_edges)
            assert trace_id is None
            emissions = svc.stream_poll(sub.id)
            assert len(emissions) == report.emitted
            # The engine's graph now holds base + live: emissions since
            # subscribe == one-shot matches completed by live edges.
            live = set(live_edges)
            want = [
                m
                for m in find_matches(
                    query, constraints, graph
                ).matches
                if any(tuple(e) in live for e in m.edge_map)
            ]
            assert Counter(e.match for e in emissions) == Counter(want)
            final = svc.stream_unsubscribe(sub.id)
            assert final.matches_emitted == report.emitted

    def test_engine_seeded_zero_copy_from_snapshot(
        self, service, instance
    ):
        query, constraints, _ = instance
        handle = service.graphs.get("g")
        sub = service.stream_subscribe("g", query, constraints)
        engine = service._engine_for_subscription(sub.id)
        # No recompilation on stream creation: the registered snapshot
        # IS the engine graph's first segment.
        assert engine.graph.freeze() is handle.snapshot

    def test_subscription_ids_unique_across_graphs(
        self, service, instance
    ):
        query, constraints, graph = instance
        service.load_graph("h", graph)
        a = service.stream_subscribe("g", query, constraints)
        b = service.stream_subscribe("h", query, constraints)
        assert a.id != b.id
        with pytest.raises(StreamingError):
            service.stream_subscribe("g", query, constraints, sub_id=b.id)

    def test_unknown_graph_and_subscription(self, service, instance):
        query, constraints, _ = instance
        with pytest.raises(UnknownGraphError):
            service.stream_subscribe("ghost", query, constraints)
        with pytest.raises(UnknownSubscriptionError):
            service.stream_poll("s99")

    def test_drop_graph_closes_streams(self, service, instance):
        query, constraints, _ = instance
        sub = service.stream_subscribe("g", query, constraints)
        service.drop_graph("g")
        with pytest.raises(UnknownSubscriptionError):
            service.stream_poll(sub.id)

    def test_options_forwarded(self, service, instance):
        query, constraints, graph = instance
        sub = service.stream_subscribe(
            "g",
            query,
            constraints,
            SubscriptionOptions(queue_capacity=2, lateness=5),
        )
        engine = service._engine_for_subscription(sub.id)
        assert engine.subscription(sub.id).options.queue_capacity == 2

    def test_metrics_and_traces(self, base_service, instance):
        query, constraints, _ = instance
        service, live_edges = base_service
        sub = service.stream_subscribe("g", query, constraints)
        report, trace_id = service.stream_ingest(
            "g", live_edges, trace=True
        )
        assert report.emitted > 0
        assert trace_id is not None
        assert service.traces.get(trace_id) is not None
        service.stream_poll(sub.id)
        snapshot = service.metrics_snapshot()
        streaming = snapshot["streaming"]["g"]
        assert streaming["edges_ingested"] == report.new_edges
        rows = {row["id"]: row for row in streaming["subscriptions"]}
        assert rows[sub.id]["matches_emitted"] == report.emitted
        counters = snapshot["counters"]
        assert counters["subscriptions_total"] == 1
        assert counters["ingest_edges_total"] == report.new_edges
        assert counters.get("stream_matches_total", 0) == report.emitted


class TestJsonlOps:
    def _serve(self, service, requests):
        out = io.StringIO()
        serve_stdio(
            service,
            io.StringIO("".join(json.dumps(r) + "\n" for r in requests)),
            out,
        )
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_full_streaming_session(self, base_service, instance):
        query, constraints, _ = instance
        service, live_edges = base_service
        pattern = pattern_to_dict(query, constraints)
        responses = self._serve(service, [
            {"op": "subscribe", "graph": "g", "pattern": pattern,
             "queue_capacity": 4096, "id": "r1"},
            {"op": "ingest", "graph": "g",
             "edges": [list(e) for e in live_edges], "id": "r2"},
            {"op": "poll", "subscription_id": "s1", "max": 2, "id": "r3"},
            {"op": "poll", "subscription_id": "s1", "id": "r4"},
            {"op": "metrics", "id": "r5"},
            {"op": "unsubscribe", "subscription_id": "s1", "id": "r6"},
        ])
        by_id = {r["id"]: r for r in responses}
        assert all(r["status"] == "ok" for r in responses)
        assert by_id["r1"]["subscription"]["id"] == "s1"
        emitted = by_id["r2"]["report"]["emitted"]
        assert emitted > 0
        assert by_id["r3"]["count"] == 2
        assert by_id["r4"]["count"] == emitted - 2
        emission = by_id["r3"]["emissions"][0]
        assert set(emission) >= {
            "subscription_id", "seq", "vertices", "edges", "edge",
            "latency_seconds",
        }
        assert "g" in by_id["r5"]["metrics"]["streaming"]
        assert by_id["r6"]["subscription"]["matches_emitted"] == emitted

    def test_streaming_errors_are_reported(self, service):
        responses = self._serve(service, [
            {"op": "subscribe", "graph": "g", "id": "no-pattern"},
            {"op": "ingest", "graph": "g", "id": "no-edges"},
            {"op": "poll", "subscription_id": "nope", "id": "bad-sub"},
        ])
        by_id = {r["id"]: r for r in responses}
        assert by_id["no-pattern"]["status"] == "error"
        assert "pattern" in by_id["no-pattern"]["error"]
        assert by_id["no-edges"]["status"] == "error"
        assert "edges" in by_id["no-edges"]["error"]
        assert by_id["bad-sub"]["status"] == "error"
        assert "nope" in by_id["bad-sub"]["error"]
