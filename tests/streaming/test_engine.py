"""StreamingEngine unit behaviour: delivery, ledger, queues, errors.

The cross-algorithm emission/one-shot equivalence lives in
``test_equivalence.py``; here a hand-built two-edge pattern makes every
engine behaviour — exactly-once delivery, duplicate handling, queue
backpressure, partial expiry, no-replay — checkable by eye.
"""

import pytest

from repro.errors import StreamingError, UnknownSubscriptionError
from repro.graphs import QueryGraph, SegmentedGraph, TemporalConstraints
from repro.obs import Tracer
from repro.streaming import StreamingEngine, SubscriptionOptions

#: q0: A->B, q1: B->C with 0 <= t1 - t0 <= 10.
QUERY = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
CONSTRAINTS = TemporalConstraints([(0, 1, 10)], num_edges=2)
DATA_LABELS = ["A", "B", "C", "A", "B", "C"]


def make_engine(**graph_kwargs):
    graph_kwargs.setdefault("merge_threshold", 4)
    return StreamingEngine(SegmentedGraph(DATA_LABELS, **graph_kwargs))


class TestSubscriptionLifecycle:
    def test_auto_ids_are_sequential(self):
        engine = make_engine()
        assert engine.subscribe(QUERY, CONSTRAINTS).id == "s1"
        assert engine.subscribe(QUERY, CONSTRAINTS).id == "s2"
        assert engine.subscriptions() == ["s1", "s2"]

    def test_explicit_id_and_duplicate_rejected(self):
        engine = make_engine()
        assert engine.subscribe(QUERY, CONSTRAINTS, sub_id="fraud").id == "fraud"
        with pytest.raises(StreamingError):
            engine.subscribe(QUERY, CONSTRAINTS, sub_id="fraud")

    def test_unsubscribe_returns_final_state(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        engine.ingest([(0, 1, 5), (1, 2, 8)])
        final = engine.unsubscribe("s")
        assert final.matches_emitted == 1
        with pytest.raises(UnknownSubscriptionError):
            engine.unsubscribe("s")
        with pytest.raises(UnknownSubscriptionError):
            engine.poll("s")

    def test_infeasible_and_malformed_patterns_rejected(self):
        engine = make_engine()
        empty = QueryGraph(["A"], [])
        with pytest.raises(StreamingError):
            engine.subscribe(empty, TemporalConstraints([], num_edges=0))
        with pytest.raises(StreamingError):
            engine.subscribe(
                QUERY, TemporalConstraints([(0, 1, 5)], num_edges=3)
            )

    def test_option_validation(self):
        with pytest.raises(StreamingError):
            SubscriptionOptions(queue_capacity=0)
        with pytest.raises(StreamingError):
            SubscriptionOptions(lateness=-1)
        with pytest.raises(StreamingError):
            SubscriptionOptions(search_budget=0.0)


class TestDelivery:
    @pytest.mark.parametrize(
        "stream",
        [
            [(0, 1, 5), (1, 2, 8)],
            [(1, 2, 8), (0, 1, 5)],  # shuffled arrival
        ],
    )
    def test_exactly_once_on_last_arriving_edge(self, stream):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        first = engine.ingest(stream[:1])
        assert first.emitted == 0  # one edge cannot complete the pattern
        second = engine.ingest(stream[1:])
        assert second.emitted == 1
        emissions = engine.poll("s")
        assert len(emissions) == 1
        emission = emissions[0]
        assert emission.seq == 0
        assert tuple(emission.edge) == stream[1]  # the completing edge
        assert [tuple(e) for e in emission.match.edge_map] == [
            (0, 1, 5),
            (1, 2, 8),
        ]
        assert engine.poll("s") == []  # drained

    def test_constraint_violations_not_emitted(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        report = engine.ingest([(0, 1, 5), (1, 2, 20)])  # gap 15 > 10
        assert report.emitted == 0
        assert engine.poll("s") == []

    def test_duplicates_counted_and_never_redelivered(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        engine.ingest([(0, 1, 5), (1, 2, 8)])
        report = engine.ingest([(1, 2, 8), (0, 1, 5)])
        assert report.new_edges == 0
        assert report.duplicates == 2
        assert report.emitted == 0
        assert len(engine.poll("s")) == 1  # only the original emission

    def test_no_replay_for_late_subscribers(self):
        engine = make_engine()
        engine.ingest([(0, 1, 5), (1, 2, 8)])  # completed pre-subscribe
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="late")
        assert engine.poll("late") == []
        # New arrivals may still reach back into the pre-existing graph.
        report = engine.ingest([(1, 2, 9)])
        assert report.emitted == 1
        (emission,) = engine.poll("late")
        assert [tuple(e) for e in emission.match.edge_map] == [
            (0, 1, 5),
            (1, 2, 9),
        ]

    def test_queue_capacity_drops_oldest(self):
        engine = make_engine()
        engine.subscribe(
            QUERY,
            CONSTRAINTS,
            SubscriptionOptions(queue_capacity=1),
            sub_id="s",
        )
        engine.ingest([(0, 1, 5), (1, 2, 8), (1, 2, 9)])  # two matches
        sub = engine.subscription("s")
        assert sub.matches_emitted == 2
        assert sub.emissions_dropped == 1
        (kept,) = engine.poll("s")
        assert kept.seq == 1  # oldest was dropped

    def test_poll_max_items(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        engine.ingest([(0, 1, 5), (1, 2, 8), (1, 2, 9), (1, 2, 10)])
        assert [e.seq for e in engine.poll("s", max_items=2)] == [0, 1]
        assert [e.seq for e in engine.poll("s")] == [2]

    def test_two_subscriptions_deliver_independently(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="a")
        # Tighter twin: gap 1 rejects the (5, 8) pair.
        engine.subscribe(
            QUERY, TemporalConstraints([(0, 1, 1)], num_edges=2), sub_id="b"
        )
        engine.ingest([(0, 1, 5), (1, 2, 8), (1, 2, 6)])
        assert len(engine.poll("a")) == 2  # t1 in {8, 6}
        assert len(engine.poll("b")) == 1  # only t1 = 6


class TestLedgerAndMetrics:
    def test_partials_expire_as_watermark_advances(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        engine.ingest([(0, 1, 5)])
        sub = engine.subscription("s")
        assert len(sub.partials) == 1  # candidacy window [5-10, 5+10]
        engine.ingest([(3, 4, 100)])  # watermark jumps past the window
        assert len(sub.partials) == 1  # ... the new edge opened its own
        assert sub.partials_expired == 1
        assert engine.metrics_snapshot()["watermark"] == 100

    def test_lateness_delays_expiry(self):
        engine = make_engine()
        engine.subscribe(
            QUERY,
            CONSTRAINTS,
            SubscriptionOptions(lateness=1_000),
            sub_id="s",
        )
        engine.ingest([(0, 1, 5), (3, 4, 100)])
        assert engine.subscription("s").partials_expired == 0

    def test_unbounded_span_is_not_tracked(self):
        engine = make_engine()
        engine.subscribe(
            QUERY, TemporalConstraints([], num_edges=2), sub_id="s"
        )
        engine.ingest([(0, 1, 5), (3, 4, 100)])
        sub = engine.subscription("s")
        assert sub.partials == []  # inf span: never provably dead
        assert sub.partials_expired == 0

    def test_metrics_snapshot_shape(self):
        engine = make_engine(merge_threshold=2)
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        report = engine.ingest([(0, 1, 5), (1, 2, 8), (1, 2, 8)])
        assert report.flushes >= 1
        snap = engine.metrics_snapshot()
        assert snap["edges_ingested"] == 2
        assert snap["duplicates"] == 1
        assert snap["graph"]["num_segments"] >= 1
        (row,) = snap["subscriptions"]
        assert row["id"] == "s"
        assert row["matches_emitted"] == 1
        assert row["edges_seen"] == 2
        assert row["searches"] + row["searches_skipped"] == 2

    def test_ingest_tracer_captures_delta_searches(self):
        engine = make_engine()
        engine.subscribe(QUERY, CONSTRAINTS, sub_id="s")
        tracer = Tracer()
        engine.ingest([(0, 1, 5), (1, 2, 8)], tracer=tracer)
        names = [span.name for span in tracer.spans()]
        assert "delta-search" in names
        match_span = next(
            s for s in tracer.spans() if s.name == "delta-search"
            and s.attrs.get("matches")
        )
        assert match_span.attrs["subscription"] == "s"
        # The engine's own tracer is restored after the call.
        engine.ingest([(1, 2, 9)])
        assert len([s for s in tracer.spans() if s.name == "delta-search"]) == 2

    def test_segment_flush_spans_reach_tracer(self):
        engine = make_engine(merge_threshold=2)
        tracer = Tracer()
        engine.ingest([(0, 1, 1), (0, 1, 2), (0, 1, 3), (0, 1, 4)],
                      tracer=tracer)
        assert any(s.name == "segment-flush" for s in tracer.spans())
