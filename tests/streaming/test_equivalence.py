"""Streamed emissions == one-shot matches, pinned across the matrix.

The continuous engine's correctness claim: replaying a data graph as a
*shuffled* edge stream into standing subscriptions emits exactly the
match multiset that one-shot matching finds on the final graph.  Pinned
for every TCSM algorithm (the one-shot side) x both appendable backends
(dict builder and segmented), on random instances with non-trivial
match counts.
"""

import random
from collections import Counter

import pytest

from repro.core import find_matches
from repro.datasets import random_instance
from repro.graphs import SegmentedGraph, TemporalGraph
from repro.streaming import StreamingEngine

TCSM_ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")

#: Denser than the library defaults (which yield zero-match instances):
#: a 3-edge query over 150 edges on 8 vertices gives tens-to-hundreds of
#: matches per seed, so the multiset comparison actually bites.
INSTANCE = dict(
    query_vertices=3,
    query_edges=3,
    num_constraints=2,
    max_gap=25,
    data_vertices=8,
    data_edges=150,
    num_labels=2,
    max_time=40,
)


def _streamed_instance(seed):
    """Stream a random instance; return (emissions, final graphs)."""
    query, constraints, source = random_instance(seed=seed, **INSTANCE)
    stream = list(source.edges())
    random.Random(seed + 17).shuffle(stream)
    engine = StreamingEngine(
        SegmentedGraph(source.labels, merge_threshold=16, max_segments=3)
    )
    engine.subscribe(query, constraints, sub_id="s")
    emitted = []
    for u, v, t in stream:
        engine.ingest([(u, v, t)])
        emitted.extend(e.match for e in engine.poll("s"))
    final_dict = TemporalGraph(source.labels)
    for u, v, t in stream:
        final_dict.add_edge(u, v, t)
    return query, constraints, emitted, final_dict, engine.graph


@pytest.mark.parametrize("algorithm", TCSM_ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_shuffled_stream_equals_one_shot(algorithm, seed):
    query, constraints, emitted, final_dict, final_seg = _streamed_instance(
        seed
    )
    streamed = Counter(emitted)
    assert streamed, "degenerate instance: no matches to compare"
    for graph in (final_dict, final_seg):
        one_shot = find_matches(
            query, constraints, graph, algorithm=algorithm
        )
        assert Counter(one_shot.matches) == streamed
        # And through the uncompiled accessors of the same backend.
        plain = find_matches(
            query,
            constraints,
            graph,
            algorithm=algorithm,
            compile_graph=False,
        )
        assert Counter(plain.matches) == streamed


def test_emission_multiset_independent_of_arrival_order():
    query, constraints, source = random_instance(seed=4, **INSTANCE)
    edges = list(source.edges())
    multisets = []
    for shuffle_seed in range(3):
        stream = list(edges)
        random.Random(shuffle_seed).shuffle(stream)
        engine = StreamingEngine(
            SegmentedGraph(source.labels, merge_threshold=8)
        )
        engine.subscribe(query, constraints, sub_id="s")
        engine.ingest(stream)
        multisets.append(
            Counter(e.match for e in engine.poll("s"))
        )
    assert multisets[0] == multisets[1] == multisets[2]
    assert multisets[0]


def test_batched_and_single_edge_ingest_agree():
    query, constraints, source = random_instance(seed=6, **INSTANCE)
    stream = list(source.edges())
    random.Random(99).shuffle(stream)
    per_edge = StreamingEngine(SegmentedGraph(source.labels))
    batched = StreamingEngine(SegmentedGraph(source.labels))
    per_edge.subscribe(query, constraints, sub_id="s")
    batched.subscribe(query, constraints, sub_id="s")
    for edge in stream:
        per_edge.ingest([edge])
    batched.ingest(stream)
    assert Counter(e.match for e in per_edge.poll("s")) == Counter(
        e.match for e in batched.poll("s")
    )
