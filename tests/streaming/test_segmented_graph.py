"""SegmentedGraph: accessor equivalence with the dict builder, pinned.

The segmented graph must be indistinguishable from a ``TemporalGraph``
holding the same edges through every :data:`GraphView` accessor —
that's what lets the matchers and the window kernels run on it
unchanged.  The fixtures force several flushes and at least one
compaction so the merged-run code paths (not just the tail) are what's
being compared.
"""

import random

import pytest

from repro.core import find_matches
from repro.datasets import random_instance, random_temporal_graph
from repro.errors import GraphError
from repro.graphs import (
    SegmentedGraph,
    TemporalGraph,
    compile_snapshot,
    ensure_snapshot,
)

LABELS = ["A", "B", "C"]


def _paired_graphs(seed, *, merge_threshold=16, max_segments=3, edges=200):
    """The same random edge stream appended to both backends."""
    source = random_temporal_graph(
        14, edges, LABELS, max_time=60, seed=seed
    )
    stream = list(source.edges())
    random.Random(seed).shuffle(stream)
    reference = TemporalGraph(source.labels)
    segmented = SegmentedGraph(
        source.labels,
        merge_threshold=merge_threshold,
        max_segments=max_segments,
    )
    for u, v, t in stream:
        assert segmented.append(u, v, t)
        assert reference.add_edge(u, v, t)
    return reference, segmented


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_accessors_match_dict_builder(seed):
    ref, seg = _paired_graphs(seed)
    assert seg.describe()["flushes"] >= 2  # the merged paths are exercised
    assert seg.num_vertices == ref.num_vertices
    assert seg.num_temporal_edges == ref.num_temporal_edges
    assert seg.num_static_edges == ref.num_static_edges
    assert seg.min_time == ref.min_time
    assert seg.max_time == ref.max_time
    assert seg.labels == ref.labels
    assert list(seg.edges_by_time()) == list(ref.edges_by_time())
    assert sorted(seg.edges()) == sorted(ref.edges())
    for label in LABELS:
        assert (
            seg.vertices_with_label(label) == ref.vertices_with_label(label)
        )
    for u in ref.vertices():
        # Neighbor iteration order is backend-specific (insertion order
        # on the dict builder, sorted ids on segments) and no matcher
        # depends on it; the *sets* and per-pair runs must agree.
        assert sorted(seg.out_neighbor_ids(u)) == sorted(
            ref.out_neighbor_ids(u)
        )
        assert sorted(seg.in_neighbor_ids(u)) == sorted(
            ref.in_neighbor_ids(u)
        )
        assert {
            x: list(times) for x, times in seg.out_items(u)
        } == {x: list(times) for x, times in ref.out_items(u)}
        assert {
            x: list(times) for x, times in seg.in_items(u)
        } == {x: list(times) for x, times in ref.in_items(u)}
        for v in ref.out_neighbor_ids(u):
            assert seg.has_pair(u, v)
            # memoryview on the single-segment fast path, list elsewhere
            # — same shape freedom GraphSnapshot has.
            assert list(seg.timestamps_list(u, v)) == list(
                ref.timestamps_list(u, v)
            )
            lo, hi = ref.timestamps_list(u, v)[0], ref.max_time
            assert list(seg.timestamps_in_window(u, v, lo, hi)) == list(
                ref.timestamps_in_window(u, v, lo, hi)
            )


@pytest.mark.parametrize("seed", [0, 1])
def test_freeze_equals_reference_snapshot(seed):
    ref, seg = _paired_graphs(seed)
    assert seg.freeze().fingerprint == compile_snapshot(ref).fingerprint
    # freeze() is cached until the next append invalidates it.
    assert seg.freeze() is seg.freeze()
    assert ensure_snapshot(seg) is seg.freeze()


def test_fingerprint_identifies_state():
    ref, seg = _paired_graphs(3, merge_threshold=8)
    # Same append history, same thresholds: deterministic digest.
    other = SegmentedGraph(ref.labels, merge_threshold=8, max_segments=3)
    replay = SegmentedGraph(ref.labels, merge_threshold=8, max_segments=3)
    for u, v, t in ref.edges_by_time():
        other.append(u, v, t)
        replay.append(u, v, t)
    assert other.fingerprint == replay.fingerprint
    # Any append invalidates and changes the digest.
    base = seg.fingerprint
    seg.append(0, 1, 10_000)
    assert seg.fingerprint != base
    # The *canonical* content digest is the frozen snapshot's — equal
    # across layouts (test_freeze_equals_reference_snapshot pins that).


def test_from_snapshot_is_zero_copy():
    graph = random_temporal_graph(10, 80, LABELS, seed=5)
    snapshot = compile_snapshot(graph)
    seg = SegmentedGraph.from_snapshot(snapshot)
    # Single segment + empty tail: freeze is the seed snapshot itself.
    assert seg.freeze() is snapshot
    assert seg.num_temporal_edges == graph.num_temporal_edges
    seg.append(0, 1, 999_999)
    assert seg.num_temporal_edges == graph.num_temporal_edges + 1
    assert seg.freeze() is not snapshot


def test_duplicate_and_conflicting_appends():
    seg = SegmentedGraph(
        ["A", "B"], merge_threshold=2
    )
    assert seg.append(0, 1, 5, label="wire")
    assert seg.append(1, 0, 6)  # triggers a flush at threshold 2
    assert seg.describe()["flushes"] == 1
    # Duplicates are detected across the segment boundary, not just the
    # tail, and carry no side effects.
    assert not seg.append(0, 1, 5, label="wire")
    assert seg.num_temporal_edges == 2
    with pytest.raises(GraphError):
        seg.append(0, 1, 5, label="cash")  # same edge, different label
    with pytest.raises(GraphError):
        seg.append(0, 0, 7)  # self loop
    with pytest.raises(GraphError):
        seg.append(0, 99, 7)  # vertex out of range
    assert seg.edge_label(0, 1, 5) == "wire"


def test_compaction_bounds_segment_count():
    seg = SegmentedGraph(LABELS * 4, merge_threshold=4, max_segments=2)
    graph = random_temporal_graph(12, 64, LABELS, seed=7)
    for u, v, t in graph.edges_by_time():
        seg.append(u, v, t)
    info = seg.describe()
    assert info["num_segments"] <= 2
    assert info["compactions"] >= 1
    assert seg.num_temporal_edges == graph.num_temporal_edges


@pytest.mark.parametrize("algorithm", ["tcsm-eve", "tcsm-e2e"])
def test_matchers_run_unchanged_on_segmented(algorithm):
    query, constraints, graph = random_instance(seed=11)
    seg = SegmentedGraph(graph.labels, merge_threshold=16)
    for u, v, t in graph.edges_by_time():
        seg.append(u, v, t)
    want = find_matches(query, constraints, graph, algorithm=algorithm)
    # Compiled path (through ensure_snapshot) and the direct segmented
    # path must both agree with the dict-builder run.
    compiled = find_matches(query, constraints, seg, algorithm=algorithm)
    direct = find_matches(
        query, constraints, seg, algorithm=algorithm, compile_graph=False
    )
    assert compiled.matches == want.matches
    assert direct.matches == want.matches
    assert direct.stats == want.stats
