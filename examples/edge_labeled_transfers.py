"""Edge-labeled matching: distinguishing transfer channels.

Section II of the paper notes that the TCSM algorithms generalise to
edge-labeled graphs.  This example exercises that generalisation: in a
payment network, the *channel* of each transaction (wire / cash / card)
is an edge label, and a laundering pattern is characterised not just by
who-pays-whom timing but by the channel sequence — cash in, wire out,
within a day.

Run with::

    python examples/edge_labeled_transfers.py
"""

import random

from repro import (
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
    find_matches,
)

HOUR = 3_600
DAY = 24 * HOUR


def build_query():
    """Cash-in then wire-out through the same account, within 24 h."""
    builder = QueryBuilder()
    builder.vertex("source", "acct")
    builder.vertex("mule", "acct")
    builder.vertex("sink", "acct")
    cash_in = builder.edge("source", "mule", label="cash")
    wire_out = builder.edge("mule", "sink", label="wire")
    query, _ = builder.build()
    constraints = TemporalConstraints(
        [(cash_in, wire_out, DAY)], num_edges=query.num_edges
    )
    return query, constraints


def build_network(seed=3):
    rng = random.Random(seed)
    builder = TemporalGraphBuilder()
    accounts = [f"acct{i}" for i in range(25)]
    for name in accounts:
        builder.vertex(name, "acct")

    horizon = 30 * DAY
    channels = ["wire", "card", "cash"]
    for _ in range(300):
        a, b = rng.sample(accounts, 2)
        builder.edge(a, b, rng.randint(0, horizon),
                     label=rng.choice(channels))

    # Planted laundering hop: cash in at noon, wire out that evening.
    t0 = 12 * DAY
    builder.edge("acct3", "acct7", t0, label="cash")
    builder.edge("acct7", "acct19", t0 + 7 * HOUR, label="wire")
    # Same timing, wrong channels: card in, card out (not flagged).
    builder.edge("acct5", "acct11", t0, label="card")
    builder.edge("acct11", "acct20", t0 + 7 * HOUR, label="card")
    return builder.build()


def main():
    query, constraints = build_query()
    graph, names = build_network()
    id_to_name = {v: k for k, v in names.items()}

    result = find_matches(query, constraints, graph, algorithm="tcsm-eve")
    print(f"channel-aware pattern: {result.num_matches} match(es)")
    for match in result.matches:
        hops = " ; ".join(
            f"{id_to_name[e.u]} -({graph.edge_label(e.u, e.v, e.t)})-> "
            f"{id_to_name[e.v]} @ {e.t / DAY:.2f}d"
            for e in match.edge_map
        )
        print(f"  {hops}")

    # Without edge labels, timing alone over-reports.
    from repro.graphs import QueryGraph

    wildcard = QueryGraph(query.labels, query.edges)
    blind = find_matches(wildcard, constraints, graph, algorithm="tcsm-eve")
    print(f"\nchannel-blind version finds {blind.num_matches} matches — "
          f"{blind.num_matches - result.num_matches} would be noise")


if __name__ == "__main__":
    main()
