"""Quickstart: define a temporal graph, a query with temporal constraints,
and find all matches.

This is the paper's running example (Figure 2): a 5-vertex query with
seven edges and five temporal constraints, matched against a small
temporal graph.  Exactly one embedding survives the constraints, in two
timestamp variants.

Run with::

    python examples/quickstart.py
"""

from repro import (
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
    find_matches,
)


def build_query():
    """The query graph G_q: who pays whom, with vertex labels."""
    builder = QueryBuilder()
    builder.vertex("u1", "A").vertex("u2", "B").vertex("u3", "C")
    builder.vertex("u4", "D").vertex("u5", "A")
    builder.edge("u1", "u2")  # e0
    builder.edge("u2", "u1")  # e1
    builder.edge("u2", "u3")  # e2
    builder.edge("u2", "u4")  # e3
    builder.edge("u4", "u3")  # e4
    builder.edge("u3", "u5")  # e5
    builder.edge("u5", "u4")  # e6
    return builder.build()


def build_constraints(num_edges):
    """Temporal constraints: 0 <= t[later] - t[earlier] <= gap."""
    return TemporalConstraints(
        [
            (1, 0, 3),  # e0 happens at most 3 ticks after e1
            (1, 2, 5),
            (3, 6, 4),
            (5, 6, 6),
            (5, 1, 3),
        ],
        num_edges=num_edges,
    )


def build_data_graph():
    """The data temporal graph: edges carry (possibly several) timestamps."""
    builder = TemporalGraphBuilder()
    for name, label in [
        ("v1", "A"), ("v2", "B"), ("v3", "C"), ("v4", "C"), ("v5", "C"),
        ("v6", "C"), ("v7", "D"), ("v9", "D"), ("v10", "D"), ("v11", "A"),
        ("v12", "A"),
    ]:
        builder.vertex(name, label)
    builder.edge("v1", "v2", 6)
    builder.edge("v2", "v1", 3)
    builder.edge("v2", "v3", 4, 5)  # two interactions -> two matches
    builder.edge("v2", "v7", 6)
    builder.edge("v7", "v3", 3)
    builder.edge("v3", "v11", 1)
    builder.edge("v11", "v7", 7)
    # Distractors that fail either structure or constraints.
    builder.edge("v2", "v6", 4)
    builder.edge("v6", "v12", 4)
    builder.edge("v2", "v10", 5)
    builder.edge("v10", "v6", 6)
    builder.edge("v12", "v10", 7)
    builder.edge("v2", "v4", 4)
    builder.edge("v4", "v12", 4)
    builder.edge("v2", "v5", 2)
    builder.edge("v2", "v9", 7)
    builder.edge("v11", "v9", 8)
    return builder.build()


def main():
    query, query_names = build_query()
    constraints = build_constraints(query.num_edges)
    graph, vertex_names = build_data_graph()
    id_to_name = {v: k for k, v in vertex_names.items()}

    print(f"query: {query.num_vertices} vertices, {query.num_edges} edges, "
          f"{len(constraints)} temporal constraints")
    print(f"data:  {graph.num_vertices} vertices, "
          f"{graph.num_temporal_edges} temporal edges\n")

    for algorithm in ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"):
        result = find_matches(query, constraints, graph, algorithm=algorithm)
        print(f"{algorithm}: {result.num_matches} matches "
              f"in {result.total_seconds * 1000:.2f} ms "
              f"(build {result.build_seconds * 1000:.2f} ms)")

    result = find_matches(query, constraints, graph, algorithm="tcsm-eve")
    print("\nmatches (vertex embedding + per-edge timestamps):")
    for match in result.matches:
        embedding = [id_to_name[v] for v in match.vertex_map]
        print(f"  {embedding}  times={list(match.timestamp_vector())}")


if __name__ == "__main__":
    main()
