"""Telecom fraud: detecting coordinated call bursts (paper's Section I).

Call/message logs form a temporal graph — users as vertices, interactions
as timestamped edges.  Scam operations show up as *coordinated bursts*:
one controller instructs several mule accounts, which immediately fan the
message out to victims.  The structure (a two-level star) is common; what
distinguishes the scam is that every hop happens within minutes.

This example also demonstrates the star-shaped "online brushing" pattern
from Figure 13, where a user transacts with several distinct merchants at
*regular* intervals — temporal constraints express the interval bound on
each consecutive pair.

Run with::

    python examples/telecom_bursts.py
"""

import random

from repro import (
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
    find_matches,
)

MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR


def build_burst_query():
    """Controller -> two mules -> a victim each, all within minutes."""
    builder = QueryBuilder()
    builder.vertex("controller", "user")
    builder.vertex("mule1", "user")
    builder.vertex("mule2", "user")
    builder.vertex("victim1", "user")
    builder.vertex("victim2", "user")
    instr1 = builder.edge("controller", "mule1")
    instr2 = builder.edge("controller", "mule2")
    fan1 = builder.edge("mule1", "victim1")
    fan2 = builder.edge("mule2", "victim2")
    query, _ = builder.build()
    constraints = TemporalConstraints(
        [
            (instr1, fan1, 10 * MINUTE),   # mule relays within 10 minutes
            (instr2, fan2, 10 * MINUTE),
            (instr1, instr2, 5 * MINUTE),  # instructions near-simultaneous
        ],
        num_edges=query.num_edges,
    )
    return query, constraints


def build_brushing_query():
    """Fig. 13's star: one user, three merchants, regular intervals."""
    builder = QueryBuilder()
    builder.vertex("buyer", "user")
    for i in range(3):
        builder.vertex(f"shop{i}", "merchant")
    e0 = builder.edge("buyer", "shop0")
    e1 = builder.edge("buyer", "shop1")
    e2 = builder.edge("buyer", "shop2")
    query, _ = builder.build()
    constraints = TemporalConstraints(
        [(e0, e1, 2 * HOUR), (e1, e2, 2 * HOUR)],
        num_edges=query.num_edges,
    )
    return query, constraints


def build_network(seed=11):
    """Synthetic call/transaction log with planted scam and brushing."""
    rng = random.Random(seed)
    builder = TemporalGraphBuilder()
    users = [f"user{i}" for i in range(40)]
    merchants = [f"shop{i}" for i in range(8)]
    for name in users:
        builder.vertex(name, "user")
    for name in merchants:
        builder.vertex(name, "merchant")

    horizon = 7 * DAY
    # Background chatter.
    for _ in range(600):
        a, b = rng.sample(users, 2)
        builder.edge(a, b, rng.randint(0, horizon))
    for _ in range(200):
        builder.edge(
            rng.choice(users), rng.choice(merchants), rng.randint(0, horizon)
        )

    # Planted scam burst: user0 instructs user1/user2, who fan out.
    t0 = 3 * DAY
    builder.edge("user0", "user1", t0)
    builder.edge("user0", "user2", t0 + 2 * MINUTE)
    builder.edge("user1", "user5", t0 + 6 * MINUTE)
    builder.edge("user2", "user6", t0 + 7 * MINUTE)

    # Planted brushing: user30 hits three merchants an hour apart.
    t1 = 5 * DAY
    builder.edge("user30", "shop1", t1)
    builder.edge("user30", "shop4", t1 + HOUR)
    builder.edge("user30", "shop6", t1 + 2 * HOUR)

    return builder.build()


def report(kind, result, id_to_name):
    print(f"{kind}: {result.num_matches} match(es) "
          f"in {result.total_seconds * 1000:.1f} ms")
    for match in result.matches[:5]:
        chain = ", ".join(
            f"{id_to_name[e.u]}->{id_to_name[e.v]}@{e.t / HOUR:.2f}h"
            for e in match.edge_map
        )
        print(f"  {chain}")


def main():
    graph, names = build_network()
    id_to_name = {v: k for k, v in names.items()}
    print(f"log: {graph.num_vertices} accounts, "
          f"{graph.num_temporal_edges} interactions\n")

    burst_query, burst_tc = build_burst_query()
    report(
        "coordinated burst",
        find_matches(burst_query, burst_tc, graph, algorithm="tcsm-eve"),
        id_to_name,
    )
    print()
    brush_query, brush_tc = build_brushing_query()
    report(
        "brushing star",
        find_matches(brush_query, brush_tc, graph, algorithm="tcsm-eve"),
        id_to_name,
    )


if __name__ == "__main__":
    main()
