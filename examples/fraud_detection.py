"""Bill-intermediary fraud detection (the paper's Figure 1 / case study).

The motivating application: in a financial bill-circulation network, a
*risk intermediary* buys acceptance bills from an enterprise with cash and
rapidly transfers them onward to a bank to pocket the interest margin.
What makes the pattern suspicious is not its shape alone — legitimate
discounting looks similar — but the **temporal coupling**: the purchase,
the transfer and the settlement all happen within a designated window Δt.

This example builds a synthetic bill-circulation network with honest
traffic, a planted intermediary ring operating within hours, and a
look-alike ring whose steps are spread over weeks (a legitimate broker).
A temporal-constraint query flags the former and ignores the latter;
the same query *without* constraints flags both — the false positive the
paper's dual-constraint framework eliminates.

Run with::

    python examples/fraud_detection.py
"""

import random

from repro import (
    QueryBuilder,
    TemporalConstraints,
    TemporalGraphBuilder,
    find_matches,
)

HOUR = 3_600
DAY = 24 * HOUR

# Entity labels, as in Figure 1.
ENTERPRISE = "enterprise"
BANK = "bank"
INTERMEDIARY = "intermediary"
INDIVIDUAL = "individual"


def build_intermediary_query():
    """The red-highlighted risk pattern of Figure 1.

    cash:   intermediary -> enterprise     (e0: buys the bill with cash)
    bill:   enterprise  -> intermediary    (e1: bill changes hands)
    trans:  intermediary -> bank           (e2: rapid onward transfer)
    settle: bank        -> intermediary    (e3: margin settles back)

    Constraints: each step happens within 12 hours of the previous one,
    and the settlement within 24 hours of the original cash payment —
    the dual order + interval bound that cuts false positives.
    """
    builder = QueryBuilder()
    builder.vertex("intermediary", INTERMEDIARY)
    builder.vertex("enterprise", ENTERPRISE)
    builder.vertex("bank", BANK)
    cash = builder.edge("intermediary", "enterprise")
    bill = builder.edge("enterprise", "intermediary")
    trans = builder.edge("intermediary", "bank")
    settle = builder.edge("bank", "intermediary")
    query, names = builder.build()
    constraints = TemporalConstraints(
        [
            (cash, bill, 12 * HOUR),
            (bill, trans, 12 * HOUR),
            (trans, settle, 12 * HOUR),
            (cash, settle, 24 * HOUR),  # global bound on the whole ring
        ],
        num_edges=query.num_edges,
    )
    return query, constraints, names


def build_bill_network(seed=7):
    """A synthetic bill-circulation network.

    Background: individuals and enterprises transacting with banks at
    random times.  Planted: one *fast* intermediary ring (suspicious) and
    one *slow* ring with the same shape spread over three weeks
    (legitimate brokering).
    """
    rng = random.Random(seed)
    builder = TemporalGraphBuilder()

    enterprises = [f"ent{i}" for i in range(12)]
    banks = [f"bank{i}" for i in range(4)]
    individuals = [f"ind{i}" for i in range(20)]
    intermediaries = ["fast_broker", "slow_broker", "idle_broker"]

    for name in enterprises:
        builder.vertex(name, ENTERPRISE)
    for name in banks:
        builder.vertex(name, BANK)
    for name in individuals:
        builder.vertex(name, INDIVIDUAL)
    for name in intermediaries:
        builder.vertex(name, INTERMEDIARY)

    horizon = 60 * DAY
    # Honest background traffic.
    for _ in range(400):
        kind = rng.random()
        t = rng.randint(0, horizon)
        if kind < 0.4:
            builder.edge(rng.choice(individuals), rng.choice(banks), t)
        elif kind < 0.7:
            builder.edge(rng.choice(enterprises), rng.choice(banks), t)
        else:
            builder.edge(rng.choice(banks), rng.choice(enterprises), t)

    # The suspicious ring: all four steps inside one afternoon.
    t0 = 10 * DAY
    builder.edge("fast_broker", "ent3", t0)
    builder.edge("ent3", "fast_broker", t0 + 2 * HOUR)
    builder.edge("fast_broker", "bank1", t0 + 5 * HOUR)
    builder.edge("bank1", "fast_broker", t0 + 9 * HOUR)

    # The look-alike: same shape, spread over three weeks.
    t1 = 20 * DAY
    builder.edge("slow_broker", "ent7", t1)
    builder.edge("ent7", "slow_broker", t1 + 6 * DAY)
    builder.edge("slow_broker", "bank2", t1 + 13 * DAY)
    builder.edge("bank2", "slow_broker", t1 + 20 * DAY)

    return builder.build()


def main():
    query, constraints, _ = build_intermediary_query()
    graph, vertex_names = build_bill_network()
    id_to_name = {v: k for k, v in vertex_names.items()}

    print(f"bill network: {graph.num_vertices} entities, "
          f"{graph.num_temporal_edges} transactions over "
          f"{graph.time_span / DAY:.0f} days\n")

    # Without temporal constraints: structural matching only.
    from repro import TemporalConstraints as TC

    unconstrained = TC([], num_edges=query.num_edges)
    structural = find_matches(query, unconstrained, graph,
                              algorithm="tcsm-eve")
    suspects_structural = {
        id_to_name[m.vertex_map[0]] for m in structural.matches
    }
    print("structure-only matching flags:", sorted(suspects_structural))

    # With temporal constraints: the dual order + window test.
    result = find_matches(query, constraints, graph, algorithm="tcsm-eve")
    suspects = {id_to_name[m.vertex_map[0]] for m in result.matches}
    print("temporal-constraint matching flags:", sorted(suspects))

    print(f"\n{len(suspects_structural) - len(suspects)} false positive(s) "
          f"eliminated by the temporal constraints")
    for match in result.matches:
        steps = [
            f"{id_to_name[e.u]} -> {id_to_name[e.v]} @ day {e.t / DAY:.2f}"
            for e in match.edge_map
        ]
        print("suspicious ring:")
        for step in steps:
            print(f"  {step}")

    # Analyst view: per-constraint slack shows how tightly coordinated
    # the ring is (slack near zero = right at the detection threshold).
    from repro import explain_match

    print("\nanalyst report:")
    print(explain_match(
        query, constraints, graph, result.matches[0],
        vertex_names=id_to_name,
        time_format=lambda t: f"{t / HOUR:.0f}h",
    ))


if __name__ == "__main__":
    main()
