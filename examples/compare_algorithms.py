"""Compare all registered matchers on a dataset stand-in.

Loads the scaled UB (sx-askubuntu) stand-in, runs the paper's default
workload (q1, tc2) through every algorithm — the three TCSM matchers,
RI-DS and the continuous-matching baselines — and prints runtime, match
count, and pruning statistics side by side.  A miniature Table III.

Run with::

    python examples/compare_algorithms.py [dataset-key]
"""

import sys

from repro import MatchOptions, find_matches
from repro.datasets import load_dataset, paper_constraints, paper_query
from repro.experiments import DEFAULT_COMPARISON, render_table


def main():
    key = sys.argv[1].upper() if len(sys.argv) > 1 else "UB"
    graph = load_dataset(key, seed=1)
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    print(f"{key} stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_temporal_edges} temporal edges; workload q1,tc2\n")

    rows = []
    for algorithm in DEFAULT_COMPARISON:
        result = find_matches(
            query, constraints, graph,
            algorithm=algorithm,
            options=MatchOptions(time_budget=20.0, collect_matches=False),
        )
        rows.append([
            algorithm,
            f"{result.total_seconds:.4f}"
            + ("*" if result.stats.budget_exhausted else ""),
            result.stats.matches,
            result.stats.failed_enumerations,
            result.stats.first_fail_layer or "-",
        ])
    print(render_table(
        ["algorithm", "seconds", "matches", "failed enum", "first fail"],
        rows,
        title="(* = stopped at 20 s budget)",
    ))


if __name__ == "__main__":
    main()
