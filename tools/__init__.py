"""Developer tooling for the TCSM reproduction (not shipped with the package)."""
