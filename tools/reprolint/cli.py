"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 — clean; 1 — findings (or unparseable files); 2 — usage
error.  ``--format json`` emits a machine-readable report for CI
annotation tooling, including a whole-tree pragma inventory so
grandfathered suppressions are auditable in one place.  ``--baseline
FILE`` suppresses previously-ratified findings (the ratchet); pair with
``--update-baseline`` to regenerate the file deliberately.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from .baseline import filter_baselined, load_baseline, write_baseline
from .registry import all_rules
from .runner import lint_paths

__all__ = ["main"]

_DEFAULT_PATHS = ("src/repro", "benchmarks", "tools")


def _split_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the TCSM reproduction: "
            "enforces the invariants that keep all matchers agreeing."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "findings-baseline JSON; baselined findings are suppressed "
            "and only new ones fail the run"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in all_rules().items():
        lines.append(f"{rule_id}  {cls.name}")
        lines.append(f"      {cls.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline FILE")
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        # A typo'd or renamed path must not make the CI gate vacuously green.
        parser.error(f"path(s) do not exist: {', '.join(missing)}")
    try:
        result = lint_paths(
            args.paths,
            select=_split_ids(args.select) if args.select else None,
            ignore=_split_ids(args.ignore) if args.ignore else None,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    if args.update_baseline:
        write_baseline(Path(args.baseline), result.findings)
        print(
            f"reprolint: baseline updated with {len(result.findings)} "
            f"finding(s) -> {args.baseline}",
            file=sys.stderr,
        )
        return 1 if result.errors else 0

    suppressed = 0
    findings = result.findings
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            parser.error(f"--baseline {args.baseline}: {exc}")
        findings, suppressed = filter_baselined(findings, baseline)

    if args.format == "json":
        payload = {
            "files_scanned": result.files_scanned,
            "findings": [finding.to_dict() for finding in findings],
            "baselined": suppressed,
            "errors": result.errors,
            "pragmas": _pragma_inventory(result),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        status = "clean" if not (findings or result.errors) else (
            f"{len(findings)} finding(s)"
            + (f", {len(result.errors)} error(s)" if result.errors else "")
        )
        if suppressed:
            status += f" ({suppressed} baselined)"
        print(
            f"reprolint: {result.files_scanned} file(s) scanned, {status}",
            file=sys.stderr,
        )
    return 1 if (findings or result.errors) else 0


def _pragma_inventory(result: object) -> dict[str, list[dict[str, object]]]:
    """Every pragma in the scanned tree, keyed by file (audit surface)."""
    inventory: dict[str, list[dict[str, object]]] = {}
    project = getattr(result, "project", None)
    if project is None:
        return inventory
    for ctx in project.contexts:
        if ctx.pragmas.entries:
            inventory[ctx.rel_path] = [
                entry.to_dict() for entry in ctx.pragmas.entries
            ]
    return inventory


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
