"""Command-line entry point: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 — clean; 1 — findings (or unparseable files); 2 — usage
error.  ``--format json`` emits a machine-readable report for CI
annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from .registry import all_rules
from .runner import lint_paths

__all__ = ["main"]

_DEFAULT_PATHS = ("src/repro", "benchmarks")


def _split_ids(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-specific static analysis for the TCSM reproduction: "
            "enforces the invariants that keep all matchers agreeing."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in all_rules().items():
        lines.append(f"{rule_id}  {cls.name}")
        lines.append(f"      {cls.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        # A typo'd or renamed path must not make the CI gate vacuously green.
        parser.error(f"path(s) do not exist: {', '.join(missing)}")
    try:
        result = lint_paths(
            args.paths,
            select=_split_ids(args.select) if args.select else None,
            ignore=_split_ids(args.ignore) if args.ignore else None,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    if args.format == "json":
        payload = {
            "files_scanned": result.files_scanned,
            "findings": [finding.to_dict() for finding in result.findings],
            "errors": result.errors,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.format())
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        status = "clean" if not (result.findings or result.errors) else (
            f"{len(result.findings)} finding(s)"
            + (f", {len(result.errors)} error(s)" if result.errors else "")
        )
        print(
            f"reprolint: {result.files_scanned} file(s) scanned, {status}",
            file=sys.stderr,
        )
    return 1 if (result.findings or result.errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
