"""Lint driver: file discovery, two-phase rule execution, pragma filtering.

Phase 1 parses every file and builds the whole-program
:class:`~tools.reprolint.project.ProjectIndex`; phase 2 runs per-file
hooks (``check_file``) followed by project-wide hooks (``check_project``)
and the legacy ``finalize`` hook.  All pragma filtering happens here, so
rules may emit unconditionally.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as _rules  # noqa: F401  (populates the registry)
from .context import FileContext
from .findings import Finding
from .pragmas import PragmaIndex
from .project import ProjectIndex, build_project_index
from .registry import Rule, all_rules

__all__ = ["LintResult", "iter_python_files", "lint_paths"]

_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".venv"}


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS & set(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: list[str] = field(default_factory=list)
    """Files that could not be parsed (reported, and fail the run)."""
    project: ProjectIndex | None = None
    """The phase-1 index (exposed for the CLI's pragma inventory)."""


def _select_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    available = all_rules()
    chosen = set(available) if select is None else {
        rule_id.upper() for rule_id in select
    }
    if ignore is not None:
        chosen -= {rule_id.upper() for rule_id in ignore}
    unknown = chosen - set(available)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(available)}"
        )
    return [available[rule_id]() for rule_id in sorted(chosen)]


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Run the (selected) rules over *paths* and return all findings.

    Findings suppressed by ``# reprolint: disable`` pragmas are filtered
    here, so rules may emit unconditionally.  Cross-file findings from
    ``check_project`` and ``finalize`` are filtered against the pragma
    index of the file they point into.
    """
    active = _select_rules(select, ignore)
    result = LintResult()
    pragma_by_path: dict[str, PragmaIndex] = {}

    # Phase 1: parse every file once, building the project index.
    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        rel_path = _display_path(path)
        try:
            ctx = FileContext.load(path, rel_path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.errors.append(f"{rel_path}: cannot parse: {exc}")
            continue
        result.files_scanned += 1
        pragma_by_path[rel_path] = ctx.pragmas
        contexts.append(ctx)
    project = build_project_index(contexts)
    result.project = project

    # Phase 2: per-file hooks, then whole-program hooks.
    for ctx in contexts:
        for rule in active:
            for finding in rule.check_file(ctx):
                if not ctx.pragmas.is_disabled(finding.rule_id, finding.line):
                    result.findings.append(finding)

    def _suppressed(finding: Finding) -> bool:
        pragmas = pragma_by_path.get(finding.path)
        return pragmas is not None and pragmas.is_disabled(
            finding.rule_id, finding.line
        )

    for rule in active:
        for finding in rule.check_project(project):
            if not _suppressed(finding):
                result.findings.append(finding)

    for rule in active:
        for finding in rule.finalize():
            if not _suppressed(finding):
                result.findings.append(finding)

    result.findings.sort()
    return result


def _display_path(path: Path) -> str:
    """Repo-relative path when possible, keeping output stable in CI."""
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)
