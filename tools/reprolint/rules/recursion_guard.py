"""R004: recursive search/match functions must carry a depth or budget guard.

Every matcher's DFS can hit pathological instances (deep queries, dense
timestamp multiplicity); a recursive ``dfs``/``*search*``/``*match*``
function that never consults a deadline, depth bound, or budget cannot be
interrupted by the engine's ``time_budget`` machinery and turns such
instances into hangs.  The rule finds self-recursive functions whose name
matches the search-family pattern and requires that the body reference at
least one guard identifier (``deadline``, ``depth``, ``max_depth``,
``budget``, ``fuel``) — the spelling the engine protocol uses.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from ..astutil import referenced_names
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["UnguardedRecursionRule"]

_SEARCH_NAME = re.compile(r"dfs|search|match", re.IGNORECASE)
_GUARDS = {"deadline", "depth", "max_depth", "budget", "fuel"}


def _is_self_recursive(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name) and func.id == node.name:
            return True
        if isinstance(func, ast.Attribute) and func.attr == node.name:
            return True
    return False


@register_rule
class UnguardedRecursionRule(Rule):
    id = "R004"
    name = "unguarded-recursion"
    description = (
        "Self-recursive *search*/*match*/dfs functions must reference a "
        "deadline/depth/budget guard so the engine can interrupt them."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _SEARCH_NAME.search(node.name):
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            if not _is_self_recursive(node):
                continue
            if referenced_names(node) & _GUARDS:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"recursive function {node.name!r} has no deadline/depth/"
                "budget guard; it cannot be interrupted on pathological "
                "instances",
            )
