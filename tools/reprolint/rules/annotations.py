"""R006: public functions in ``repro`` must be fully type-annotated.

The package ships a ``py.typed`` marker and is checked with
``mypy --strict``; an unannotated public signature both weakens the strict
gate (it degrades to ``Any``) and hides the contract from downstream
users.  The rule requires a return annotation and an annotation on every
parameter (``self``/``cls`` excepted) for: top-level public functions, and
public or dunder methods of top-level public classes.  Private helpers and
nested functions are mypy's business, not this rule's.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..astutil import FunctionNode, iter_functions_with_class
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["PublicAnnotationsRule"]


def _is_public(func: FunctionNode, owner: ast.ClassDef | None) -> bool:
    name = func.name
    if owner is not None and owner.name.startswith("_"):
        return False
    if name.startswith("__") and name.endswith("__"):
        return True  # dunders are public API
    return not name.startswith("_")


def _missing_annotations(func: FunctionNode, is_method: bool) -> Iterator[str]:
    args = func.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            yield arg.arg
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            yield arg.arg
    if args.vararg is not None and args.vararg.annotation is None:
        yield "*" + args.vararg.arg
    if args.kwarg is not None and args.kwarg.annotation is None:
        yield "**" + args.kwarg.arg
    if func.returns is None:
        yield "return"


@register_rule
class PublicAnnotationsRule(Rule):
    id = "R006"
    name = "missing-annotations"
    description = (
        "Public functions and methods in repro must annotate every "
        "parameter and the return type (py.typed / mypy --strict gate)."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_repro:
            return
        for func, owner in iter_functions_with_class(ctx.tree):
            if not _is_public(func, owner):
                continue
            if ctx.pragmas.is_disabled(self.id, func.lineno):
                continue
            is_method = owner is not None and not any(
                isinstance(dec, ast.Name) and dec.id == "staticmethod"
                for dec in func.decorator_list
            )
            missing = list(_missing_annotations(func, is_method))
            if missing:
                qualname = (
                    f"{owner.name}.{func.name}" if owner else func.name
                )
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    f"public function {qualname!r} is missing annotations "
                    f"for: {', '.join(missing)}",
                )
