"""R005: ``__all__`` must match the module's actual public surface.

Both drifts are reported: a name listed in ``__all__`` but not bound at
module top level (breaks ``from m import *`` and re-export chains), and a
public top-level def/class missing from ``__all__`` (the packages'
``__init__`` re-exports and the docs are generated from ``__all__``, so an
unlisted name is invisible API).  Applies to ``repro`` modules only;
scripts and benchmarks are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["DunderAllRule"]


@register_rule
class DunderAllRule(Rule):
    id = "R005"
    name = "all-mismatch"
    description = (
        "__all__ must list exactly the public top-level defs/classes; "
        "every listed name must exist."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_repro or ctx.module.endswith("__main__"):
            return
        declared: set[str] | None = None
        declared_line = 1
        defined: dict[str, int] = {}
        bound: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined[node.name] = node.lineno
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    bound.add(target.id)
                    if target.id == "__all__":
                        declared_line = node.lineno
                        try:
                            declared = set(ast.literal_eval(node.value))
                        except ValueError:
                            return  # dynamically built; cannot verify
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
        if declared is None:
            public = sorted(n for n in defined if not n.startswith("_"))
            if public and not ctx.pragmas.is_disabled(self.id, 1):
                yield self.finding(
                    ctx,
                    1,
                    0,
                    "module defines public names "
                    f"({', '.join(public)}) but no __all__",
                )
            return
        if not ctx.pragmas.is_disabled(self.id, declared_line):
            for missing in sorted(declared - bound):
                yield self.finding(
                    ctx,
                    declared_line,
                    0,
                    f"__all__ lists {missing!r} but the module never "
                    "defines or imports it",
                )
        for name, line in sorted(defined.items()):
            if name.startswith("_") or name in declared:
                continue
            if ctx.pragmas.is_disabled(self.id, line):
                continue
            yield self.finding(
                ctx,
                line,
                0,
                f"public name {name!r} is missing from __all__",
            )
