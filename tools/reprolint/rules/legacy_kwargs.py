"""R018: no legacy keyword arguments on the blessed matching entry points.

``find_matches``/``count_matches`` grew an ``options=MatchOptions(...)``
parameter and ``Matcher.run`` takes a ``RunContext``; the flat keyword
forms (``limit=``, ``time_budget=``, ``tighten=``, ``collect_matches=``,
``partition=``, ``trace=`` and ``run(limit=/stats=/deadline=/partition=)``)
are deprecation shims scheduled for removal.  First-party code must not
lean on them — every in-repo caller passes the structured options object,
so the shims can be deleted without a sweep.  Tests that pin the shim
behaviour itself carry a ``# reprolint: disable=R018`` pragma.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["LegacyKeywordCallRule"]

#: Entry points that accept ``options=`` and the legacy keywords their
#: shim still tolerates.
_OPTIONS_ENTRY_POINTS = {
    "find_matches": {
        "limit",
        "time_budget",
        "tighten",
        "collect_matches",
        "partition",
        "trace",
    },
    "count_matches": {
        "limit",
        "time_budget",
        "tighten",
        "partition",
        "trace",
    },
}

#: ``Matcher.run`` keywords shimmed into ``RunContext``.
_RUN_LEGACY_KEYWORDS = {"limit", "stats", "deadline", "partition"}


def _call_name(node: ast.Call) -> str | None:
    """Bare or attribute call target name (``f(...)`` or ``obj.f(...)``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class LegacyKeywordCallRule(Rule):
    id = "R018"
    name = "legacy-match-kwargs"
    description = (
        "First-party calls must use options=MatchOptions(...) / "
        "RunContext, not the deprecated flat keywords on "
        "find_matches/count_matches/Matcher.run."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            legacy: set[str] | None = None
            if name in _OPTIONS_ENTRY_POINTS:
                legacy = _OPTIONS_ENTRY_POINTS[name]
                replacement = "options=MatchOptions(...)"
            elif name == "run" and isinstance(node.func, ast.Attribute):
                legacy = _RUN_LEGACY_KEYWORDS
                replacement = "a RunContext positional argument"
            if legacy is None:
                continue
            offenders = sorted(
                keyword.arg
                for keyword in node.keywords
                if keyword.arg in legacy
            )
            if not offenders:
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{name}() called with deprecated keyword(s) "
                f"{', '.join(offenders)}; pass {replacement} instead",
            )
