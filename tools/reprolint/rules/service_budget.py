"""R009: service-layer matcher runs must carry a budget or deadline.

The service admits queries under a per-query budget and degrades
gracefully by returning deadline-tagged partial results; that contract
only holds if every path from the service into the engine forwards the
budget.  A ``matcher.run(...)``, ``run_matcher(...)`` or
``find_matches(...)`` call inside :mod:`repro.service` that omits both
``deadline`` and ``time_budget`` starts an uninterruptible search — one
pathological query then wedges a pool worker for good, defeating
admission control.  Passing an explicit ``deadline=None`` (an unbounded
run chosen on purpose) is allowed; *forgetting* the keyword is not.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["ServiceBudgetRule"]

#: Call names that start a matcher search when reached from the service.
_RUN_CALLS = {"run", "run_matcher", "find_matches"}
#: Keywords that thread the budget protocol into the search.
_BUDGET_KEYWORDS = {"deadline", "time_budget"}


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class ServiceBudgetRule(Rule):
    id = "R009"
    name = "service-unbudgeted-run"
    description = (
        "Matcher runs inside repro.service must pass deadline= or "
        "time_budget= so admission control can bound every query."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not (
            ctx.module == "repro.service"
            or ctx.module.startswith("repro.service.")
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _RUN_CALLS:
                continue
            keywords = {kw.arg for kw in node.keywords}
            if keywords & _BUDGET_KEYWORDS:
                continue
            if None in keywords:  # a **kwargs splat may forward the budget
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"service call {name}() passes neither deadline= nor "
                "time_budget=; every query the service starts must be "
                "boundable",
            )
