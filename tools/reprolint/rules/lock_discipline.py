"""R013: attributes guarded by a lock anywhere must be guarded everywhere.

The service layer's thread-safety contract is *lock discipline*: if a
class ever accesses ``self.<attr>`` inside ``with self.<lock>:``, then
every other read/write of that attribute is a potential race unless it
too holds the lock.  The rule works over the phase-1 project index:

1. An attribute counts as *lock-guarded* when at least one access site
   holds exactly one candidate lock, and the attribute is mutated outside
   construction (``__init__``/``__post_init__``/...).  Attributes only
   written during construction are immutable-after-publish and safe to
   read bare (this keeps e.g. a ``self._started = time.time()`` read in
   an unlocked ``uptime_seconds()`` clean).
2. Every access site of a guarded attribute must hold the guarding lock —
   either directly, or *inherited*: a helper method called exclusively
   from ``with self.<lock>:`` regions of the same class runs under the
   lock one level deep, so its bare accesses are fine.
3. Construction methods are exempt (no concurrent aliasing yet), and a
   ``# reprolint: guarded-by(<lock>)`` pragma on the access line asserts
   an intentional lock-free site (e.g. a monotonic counter read where
   staleness is acceptable); ``guarded-by(*)`` waives any lock.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from ..findings import Finding
from ..project import CONSTRUCTION_METHODS, ClassIndex, ProjectIndex
from ..registry import Rule, register_rule

__all__ = ["LockDisciplineRule"]


@register_rule
class LockDisciplineRule(Rule):
    id = "R013"
    name = "lock-discipline"
    description = (
        "An attribute accessed under `with self.<lock>:` in one method "
        "must hold that lock at every read/write site (helper methods "
        "called only under the lock inherit it); annotate intentional "
        "lock-free sites with `# reprolint: guarded-by(<lock>)`."
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        for cls in project.classes:
            if cls.lock_attrs:
                yield from self._check_class(project, cls)

    def _check_class(
        self, project: ProjectIndex, cls: ClassIndex
    ) -> Iterator[Finding]:
        guard = self._guard_map(cls)
        if not guard:
            return
        pragmas = project.pragmas(cls.rel_path)
        inherited: dict[str, frozenset[str]] = {}
        for access in cls.accesses:
            lock = guard.get(access.attr)
            if lock is None or access.method in CONSTRUCTION_METHODS:
                continue
            if lock in access.locks_held:
                continue
            if access.method not in inherited:
                inherited[access.method] = cls.inherited_locks(access.method)
            if lock in inherited[access.method]:
                continue
            if pragmas is not None:
                asserted = pragmas.guarded_by(access.line)
                if "*" in asserted or lock in asserted:
                    continue
            kind = "write to" if access.is_write else "read of"
            yield self.finding(
                cls.rel_path,
                access.line,
                access.col,
                f"{kind} `{cls.name}.{access.attr}` without holding "
                f"`self.{lock}` (guarded elsewhere in the class); hold "
                "the lock or annotate with "
                f"`# reprolint: guarded-by({lock})`",
            )

    def _guard_map(self, cls: ClassIndex) -> dict[str, str]:
        """attr -> guarding lock, for attrs the class treats as guarded.

        An attribute qualifies when (a) some access site holds at least
        one lock, (b) the attribute is mutated outside construction, and
        (c) the lock attribute itself is not the accessed attribute.
        The guarding lock is the one held at the most access sites —
        classes with several locks guard disjoint attribute sets, and
        majority vote over sites picks the intended one without needing
        annotations.
        """
        votes: dict[str, Counter[str]] = {}
        mutated_late: set[str] = set()
        for access in cls.accesses:
            if access.attr in cls.lock_attrs:
                continue
            if access.is_write and access.method not in CONSTRUCTION_METHODS:
                mutated_late.add(access.attr)
            if access.method in CONSTRUCTION_METHODS:
                continue
            for lock in access.locks_held:
                votes.setdefault(access.attr, Counter())[lock] += 1
        return {
            attr: counts.most_common(1)[0][0]
            for attr, counts in votes.items()
            if attr in mutated_late
        }
