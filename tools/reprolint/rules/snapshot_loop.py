"""R017: snapshot compilation must not happen inside a loop body.

``compile_snapshot`` / ``freeze`` walk every edge of the graph: calling
either per loop iteration turns an O(edges) amortised cost into
O(iterations x edges) — exactly the pathology the segmented graph
(:class:`repro.graphs.SegmentedGraph`) exists to avoid.  Hoist the call
out of the loop, reuse the cached ``freeze()`` result, or append through
a ``SegmentedGraph`` so recompilation is amortised across a whole
segment.  Deliberate recompile-in-loop measurements (e.g. the streaming
benchmark's per-edge baseline) escape with a pragma::

    graph.freeze()  # reprolint: disable=R017 -- measuring the baseline
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["SnapshotRecompileInLoopRule"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _recompile_name(call: ast.Call) -> str | None:
    """The matched callable name, or None if *call* is not a recompile."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "compile_snapshot":
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in (
        "compile_snapshot",
        "freeze",
    ):
        return func.attr
    return None


def _iter_loop_body_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Calls whose nearest enclosing statements include a loop body.

    Only the repeated part of the loop counts: statements in a loop's
    ``orelse`` run once after the loop finishes, so they are treated
    like straight-line code.
    """
    pending: list[tuple[ast.AST, bool]] = [(tree, False)]
    while pending:
        node, in_loop = pending.pop()
        if isinstance(node, ast.Call) and in_loop:
            yield node
        if isinstance(node, _LOOPS):
            for child in node.body:
                pending.append((child, True))
            for child in node.orelse:
                pending.append((child, in_loop))
            # iter/test expressions evaluate once (or cheaply per
            # iteration for While tests — still flagged, deliberately:
            # a freeze() in a loop condition reruns every iteration).
            if isinstance(node, ast.While):
                pending.append((node.test, True))
            else:
                pending.append((node.iter, in_loop))
        else:
            for child in ast.iter_child_nodes(node):
                pending.append((child, in_loop))


@register_rule
class SnapshotRecompileInLoopRule(Rule):
    id = "R017"
    name = "snapshot-recompile-in-loop"
    description = (
        "compile_snapshot()/freeze() inside a loop body recompiles the "
        "whole graph per iteration; hoist it or use SegmentedGraph."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for call in _iter_loop_body_calls(ctx.tree):
            name = _recompile_name(call)
            if name is None:
                continue
            if ctx.pragmas.is_disabled(self.id, call.lineno):
                continue
            yield self.finding(
                ctx,
                call.lineno,
                call.col_offset,
                f"{name}() inside a loop recompiles the whole snapshot "
                "every iteration; hoist it out of the loop or append "
                "through SegmentedGraph",
            )
