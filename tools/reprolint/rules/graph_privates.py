"""R011: graph internals stay inside :mod:`repro.graphs`.

The graph layer deliberately splits a mutable builder
(:class:`repro.graphs.TemporalGraph`, dict-of-dict adjacency) from an
immutable compiled form (:class:`repro.graphs.GraphSnapshot`, CSR typed
arrays).  Matchers, baselines, and the service consume the shared
accessor API (``out_items``, ``timestamps``, ``has_pair``, ...), which
both backends implement identically.  Code that reaches for the private
storage — ``graph._out[u]``, ``snapshot._out_times`` — silently welds
itself to one backend: it crashes (or worse, reads garbage) the moment a
snapshot flows in where a dict graph used to, and it bypasses the
equivalence guarantees the accessor layer pins in tests.

The rule flags attribute access to the graph layer's private storage
names anywhere outside ``repro.graphs``.  It is name-based (no type
inference), so the guarded set holds only names unique enough to the
graph layer that a hit elsewhere is almost certainly a leak; a
deliberate exception can carry a ``# reprolint: disable=R011`` pragma.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["GraphPrivatesRule"]

#: Private storage attributes of TemporalGraph / StaticGraph /
#: GraphSnapshot.  Accessing any of these outside repro.graphs couples
#: the caller to one backend's memory layout.
_PRIVATE_GRAPH_ATTRS = frozenset(
    {
        # TemporalGraph / StaticGraph builders
        "_out",
        "_in",
        "_de_temporal",
        "_edges_by_time",
        "_frozen",
        "_num_temporal_edges",
        # GraphSnapshot CSR planes
        "_out_offsets",
        "_out_nbrs",
        "_out_ts_offsets",
        "_out_times",
        "_in_offsets",
        "_in_nbrs",
        "_in_ts_offsets",
        "_in_times",
        "_out_times_mv",
        "_in_times_mv",
        # shared label / edge-label indexes
        "_label_index",
        "_label_times",
    }
)


@register_rule
class GraphPrivatesRule(Rule):
    id = "R011"
    name = "graph-private-access"
    description = (
        "private graph storage (._out, ._in, CSR arrays, label indexes) "
        "must not be accessed outside repro.graphs; use the accessor API "
        "shared by TemporalGraph and GraphSnapshot."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module == "repro.graphs" or ctx.module.startswith(
            "repro.graphs."
        ):
            return  # the graph layer owns its own storage
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in _PRIVATE_GRAPH_ATTRS:
                continue
            # `self._out` on a non-graph class is still a leak of the
            # naming convention worth flagging only when it aliases graph
            # storage; but every guarded name is specific enough that we
            # flag unconditionally and let pragmas cover deliberate use.
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"access to private graph storage '.{node.attr}' outside "
                "repro.graphs couples this code to one backend's layout; "
                "use the shared accessor API (out_items/timestamps/...)",
            )
