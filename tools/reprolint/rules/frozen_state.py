"""R014: no attribute mutation on frozen types after construction.

Generalises the name-convention R003 into a type-aware check over the
phase-1 project index.  *Frozen types* are every ``@dataclass(frozen=True)``
class discovered anywhere in the scanned tree (``MatchOptions``, the TCQ/
TCQ+/TCF plans, compiled planner output, ...), classes deriving from one,
plus ``GraphSnapshot`` and its write-barrier subclass, which enforce
immutability by contract rather than by dataclass machinery.

Three violation shapes:

1. A method *of* a frozen class writing ``self.<attr>`` — including
   in-place container mutation (``self.entries.append(...)``,
   ``self.table[k] = v``) — outside construction (``__init__``,
   ``__post_init__``, ``__setstate__``) or a compile factory
   (``_init_*`` / ``compile*`` / ``_compile*`` methods, the sanctioned
   places where slot caches are materialised).
2. Any code writing through a local variable constructed from a frozen
   class (``snap = GraphSnapshot(...); snap.n = 0``) or calling
   ``setattr`` on it.
3. Any code writing through ``self.<attr>.<field>`` where ``__init__``
   bound the attribute to a frozen class instance.

``object.__setattr__`` escapes stay R003's business; suppress deliberate
slot-cache writes with ``# reprolint: disable=R014`` and a justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import FileContext
from ..findings import Finding
from ..project import CONSTRUCTION_METHODS, MUTATOR_METHODS, ProjectIndex
from ..registry import Rule, register_rule

__all__ = ["FrozenStateWriteRule"]

#: Immutable-by-contract classes that are not frozen dataclasses.
_FROZEN_BY_CONTRACT = {"GraphSnapshot", "SnapshotWriteBarrier"}

#: Method names allowed to write self-attributes of a frozen class.
_EXEMPT_METHODS = CONSTRUCTION_METHODS | {"__setstate__", "__reduce__"}


def _is_factory(method: str) -> bool:
    """Compile-factory naming convention: the sanctioned cache builders."""
    return method.startswith(("_init", "compile", "_compile"))


@register_rule
class FrozenStateWriteRule(Rule):
    id = "R014"
    name = "frozen-state-write"
    description = (
        "Frozen types (GraphSnapshot, MatchOptions, compiled plans, any "
        "@dataclass(frozen=True)) must not be mutated outside "
        "construction or compile factories — rebuild instead of patching."
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        frozen = self._frozen_names(project)
        yield from self._check_frozen_class_bodies(project, frozen)
        for ctx in project.contexts:
            yield from self._check_external_writes(project, ctx, frozen)

    def _frozen_names(self, project: ProjectIndex) -> frozenset[str]:
        names = set(project.frozen_classes) | _FROZEN_BY_CONTRACT
        # One inheritance hop: subclasses of a frozen class are frozen.
        grew = True
        while grew:
            grew = False
            for cls in project.classes:
                if cls.name not in names and any(
                    base in names for base in cls.bases
                ):
                    names.add(cls.name)
                    grew = True
        return frozenset(names)

    # -- shape 1: self-writes inside frozen class bodies ----------------
    def _check_frozen_class_bodies(
        self, project: ProjectIndex, frozen: frozenset[str]
    ) -> Iterator[Finding]:
        for cls in project.classes:
            if cls.name not in frozen:
                continue
            for access in cls.accesses:
                if not access.is_write:
                    continue
                if access.method in _EXEMPT_METHODS or _is_factory(
                    access.method
                ):
                    continue
                yield self.finding(
                    cls.rel_path,
                    access.line,
                    access.col,
                    f"`{cls.name}` is frozen but `{access.method}` writes "
                    f"`self.{access.attr}`; move the write into "
                    "construction or a compile factory, or rebuild the "
                    "object",
                )

    # -- shapes 2+3: writes through frozen-typed receivers ---------------
    def _check_external_writes(
        self,
        project: ProjectIndex,
        ctx: FileContext,
        frozen: frozenset[str],
    ) -> Iterator[Finding]:
        # Attributes bound to frozen instances, per enclosing class.
        frozen_attrs_by_class: dict[str, set[str]] = {}
        for cls in project.classes:
            if cls.rel_path != ctx.rel_path:
                continue
            frozen_attrs_by_class[cls.name] = {
                attr
                for attr, type_name in cls.attr_types.items()
                if type_name in frozen
            }
        for func, owner in _functions_with_class(ctx.tree):
            if owner is not None and owner in frozen:
                continue  # shape 1 handled via the index
            frozen_attrs = (
                frozen_attrs_by_class.get(owner, set())
                if owner is not None
                else set()
            )
            locals_frozen = _frozen_locals(func, frozen)
            self_name = (
                func.args.args[0].arg
                if owner is not None and func.args.args
                else None
            )

            def _receiver_is_frozen(expr: ast.expr) -> bool:
                if isinstance(expr, ast.Name):
                    return expr.id in locals_frozen
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == self_name
                ):
                    return expr.attr in frozen_attrs
                return False

            for node in ast.walk(func):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        node.targets
                        if isinstance(node, (ast.Assign, ast.Delete))
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(
                            target, ast.Attribute
                        ) and _receiver_is_frozen(target.value):
                            yield self.finding(
                                ctx.rel_path,
                                node.lineno,
                                node.col_offset,
                                f"write to `.{target.attr}` of a frozen "
                                "instance; frozen objects are shared and "
                                "must be rebuilt, not patched",
                            )
                elif isinstance(node, ast.Call):
                    func_expr = node.func
                    if (
                        isinstance(func_expr, ast.Name)
                        and func_expr.id == "setattr"
                        and node.args
                        and _receiver_is_frozen(node.args[0])
                    ):
                        yield self.finding(
                            ctx.rel_path,
                            node.lineno,
                            node.col_offset,
                            "setattr() on a frozen instance",
                        )
                    elif (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in MUTATOR_METHODS
                        and isinstance(func_expr.value, ast.Attribute)
                        and _receiver_is_frozen(func_expr.value.value)
                    ):
                        yield self.finding(
                            ctx.rel_path,
                            node.lineno,
                            node.col_offset,
                            f"in-place `{func_expr.attr}` on field "
                            f"`.{func_expr.value.attr}` of a frozen "
                            "instance",
                        )


def _functions_with_class(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Top-level and method functions, with the owning class name."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, node.name


def _frozen_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef, frozen: frozenset[str]
) -> set[str]:
    """Local names assigned from a frozen-class constructor call."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in frozen
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names
