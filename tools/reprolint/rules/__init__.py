"""Rule modules; importing this package populates the rule registry."""

from . import (  # noqa: F401  (imports register the rules)
    annotations,
    bench_imports,
    dunder_all,
    exceptions,
    float_eq,
    frozen_plan,
    frozen_state,
    graph_privates,
    lock_discipline,
    lock_order,
    recursion_guard,
    registry_complete,
    service_budget,
    shared_mutable,
    span_discipline,
    window_kernel,
)

__all__ = [
    "annotations",
    "bench_imports",
    "dunder_all",
    "exceptions",
    "float_eq",
    "frozen_plan",
    "frozen_state",
    "graph_privates",
    "lock_discipline",
    "lock_order",
    "recursion_guard",
    "registry_complete",
    "service_budget",
    "shared_mutable",
    "span_discipline",
    "window_kernel",
]
