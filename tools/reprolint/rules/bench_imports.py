"""R007: benchmark scripts never import from the test suite.

Benchmarks must measure the shipped library, not test scaffolding: an
import from ``tests`` couples benchmark numbers to fixtures that change
freely, breaks running benchmarks from an installed wheel, and quietly
drags pytest into the measured process.  Shared helpers belong in
``repro.datasets`` (or the benchmarks' own ``conftest``), not in tests.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["BenchImportsTestsRule"]


@register_rule
class BenchImportsTestsRule(Rule):
    id = "R007"
    name = "bench-imports-tests"
    description = "Files under benchmarks/ must not import from tests."

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_benchmarks:
            return
        for node in ast.walk(ctx.tree):
            imported: list[str] = []
            if isinstance(node, ast.Import):
                imported = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                imported = [node.module]
            for name in imported:
                if name.split(".")[0] != "tests":
                    continue
                if ctx.pragmas.is_disabled(self.id, node.lineno):
                    continue
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"benchmark imports {name!r}; benchmarks must depend "
                    "only on the repro package",
                )
