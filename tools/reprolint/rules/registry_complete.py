"""R001: every matcher class must be registered in the engine registry.

The engine dispatches by name (``repro.core.engine.register_algorithm``);
a matcher class that exists but is never registered silently drops out of
``available_algorithms()`` — and out of the differential tests that keep
all matchers agreeing on TCSM semantics (DESIGN.md §1).  The rule collects
every ``class ...Matcher`` under ``repro.core`` / ``repro.baselines`` and
every ``register_algorithm(name, factory)`` call in the ``repro`` package,
then reports matcher classes whose name never appears as (or inside) a
registered factory.

Protocol classes (the ``Matcher`` structural type) and names referenced
inside lambda factories (the ``ri`` variant) are understood.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..astutil import call_name, dotted_tail
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["UnregisteredMatcherRule"]

_MATCHER_PACKAGES = ("repro.core", "repro.baselines")


def _is_protocol(node: ast.ClassDef) -> bool:
    return any(dotted_tail(base) == "Protocol" for base in node.bases)


@register_rule
class UnregisteredMatcherRule(Rule):
    id = "R001"
    name = "unregistered-matcher"
    description = (
        "Matcher classes under repro.core / repro.baselines must be "
        "registered with register_algorithm() somewhere in the package."
    )

    def __init__(self) -> None:
        # (rel_path, line, col, class_name)
        self._matchers: list[tuple[str, int, int, str]] = []
        self._registered: set[str] = set()

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_repro:
            return ()
        in_matcher_package = any(
            ctx.module == pkg or ctx.module.startswith(pkg + ".")
            for pkg in _MATCHER_PACKAGES
        )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and in_matcher_package
                and node.name.endswith("Matcher")
                and not _is_protocol(node)
                and not ctx.pragmas.is_disabled(self.id, node.lineno)
            ):
                self._matchers.append(
                    (ctx.rel_path, node.lineno, node.col_offset, node.name)
                )
            elif (
                isinstance(node, ast.Call)
                and call_name(node) == "register_algorithm"
                and len(node.args) >= 2
            ):
                factory = node.args[1]
                # Direct class reference, or any name mentioned inside a
                # lambda/call factory (covers partial-application wrappers).
                for sub in ast.walk(factory):
                    tail = dotted_tail(sub)
                    if tail is not None:
                        self._registered.add(tail)
        return ()

    def finalize(self) -> Iterable[Finding]:
        for rel_path, line, col, class_name in self._matchers:
            if class_name in self._registered:
                continue
            yield self.finding(
                rel_path,
                line,
                col,
                f"matcher class {class_name!r} is never passed to "
                "register_algorithm(); it is invisible to the engine and "
                "to the cross-matcher agreement tests",
            )
