"""R016: module-level mutable state shared across threads must not escape.

Module globals are process-wide singletons; once the service layer runs
queries on worker threads, any function mutating a bare module-level
``dict``/``list``/``set`` (or rebinding a global) races with every other
caller.  Three shapes are flagged:

1. A module-level name bound to a mutable literal/constructor
   (``{}``/``[]``/``set()``/``dict()``/``list()``/``defaultdict()``/...)
   that some function mutates (``global`` rebind, item store, or an
   in-place mutator call) — *unless* every mutating site runs under a
   module-level lock (``with _LOCK:`` where the lock is itself a
   module-level ``threading.Lock()``), which is the sanctioned pattern.
2. A mutable default argument (``def f(x, acc=[])``) — the classic
   escaping-default, shared across all calls.
3. A mutable class attribute on a class that also defines instance
   methods writing it through ``self`` or the class — instance state
   accidentally shared between every instance.

Registries that are intentionally process-global and populated only at
import time (decorator-driven rule/algorithm registries) are the known
exceptions: annotate with ``# reprolint: disable=R016`` on the binding
line, stating why import-time-only mutation is safe.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import FileContext
from ..findings import Finding
from ..project import MUTATOR_METHODS
from ..registry import Rule, register_rule

__all__ = ["SharedMutableRule"]

#: Constructor names producing a mutable container.
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore"}


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _is_lock_value(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name in _LOCK_FACTORIES


@register_rule
class SharedMutableRule(Rule):
    id = "R016"
    name = "shared-mutable-state"
    description = (
        "Module-level mutable containers mutated from functions, mutable "
        "default arguments, and mutable class attributes written through "
        "instances are process-wide shared state; guard with a module "
        "lock, move into instances, or pragma import-time registries."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._check_module_globals(ctx)
        yield from self._check_mutable_defaults(ctx)
        yield from self._check_class_attrs(ctx)

    # -- shape 1: module-level containers mutated at runtime -------------
    def _check_module_globals(self, ctx: FileContext) -> Iterator[Finding]:
        mutable_bindings: dict[str, int] = {}
        module_locks: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_mutable_value(node.value):
                        mutable_bindings[target.id] = node.lineno
                    elif _is_lock_value(node.value):
                        module_locks.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    if _is_mutable_value(node.value):
                        mutable_bindings[node.target.id] = node.lineno
                    elif _is_lock_value(node.value):
                        module_locks.add(node.target.id)
        if not mutable_bindings:
            return
        # Collect every runtime mutation site per global.
        mutations: dict[str, list[tuple[int, bool]]] = {}
        for func in _all_functions(ctx.tree):
            for name, line, locked in _mutation_sites(
                func, set(mutable_bindings), module_locks
            ):
                mutations.setdefault(name, []).append((line, locked))
        for name, sites in mutations.items():
            if all(locked for _, locked in sites):
                continue  # disciplined: every mutation under a module lock
            line = mutable_bindings[name]
            yield self.finding(
                ctx.rel_path,
                line,
                0,
                f"module-level mutable `{name}` is mutated at runtime "
                f"(line {sites[0][0]} and possibly others) without a "
                "module lock; shared across threads",
            )

    # -- shape 2: mutable default arguments -------------------------------
    def _check_mutable_defaults(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _all_functions(ctx.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_value(default):
                    yield self.finding(
                        ctx.rel_path,
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in `{func.name}()` is "
                        "shared across every call; default to None and "
                        "construct inside the body",
                    )

    # -- shape 3: class attrs written through instances -------------------
    def _check_class_attrs(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_mutables: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and _is_mutable_value(
                            stmt.value
                        ):
                            class_mutables[target.id] = stmt.lineno
            if not class_mutables:
                continue
            # Written through self anywhere (in-place) => shared state bug.
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                self_name = (
                    method.args.args[0].arg if method.args.args else "self"
                )
                for sub in ast.walk(method):
                    name = _inplace_self_attr_mutation(sub, self_name)
                    if name is not None and name in class_mutables:
                        yield self.finding(
                            ctx.rel_path,
                            class_mutables[name],
                            0,
                            f"class attribute `{node.name}.{name}` is a "
                            "mutable container mutated through instances "
                            f"(line {sub.lineno}); every instance shares "
                            "it — initialise in __init__ instead",
                        )
                        class_mutables.pop(name)
                        break


def _all_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _mutation_sites(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    globals_: set[str],
    module_locks: set[str],
) -> Iterator[tuple[str, int, bool]]:
    """(name, line, under_module_lock) for each global mutation in *func*."""
    declared_global = {
        name
        for node in ast.walk(func)
        if isinstance(node, ast.Global)
        for name in node.names
    }

    def walk(node: ast.AST, locked: bool) -> Iterator[tuple[str, int, bool]]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_locked = locked or any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in module_locks
                for item in node.items
            )
            for stmt in node.body:
                yield from walk(stmt, inner_locked)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in globals_
                    and target.id in declared_global
                ):
                    yield target.id, node.lineno, locked
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in globals_
                ):
                    yield target.value.id, node.lineno, locked
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in MUTATOR_METHODS
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id in globals_
            ):
                yield func_expr.value.id, node.lineno, locked
        for child in ast.iter_child_nodes(node):
            yield from walk(child, locked)

    for stmt in func.body:
        yield from walk(stmt, False)


def _inplace_self_attr_mutation(
    node: ast.AST, self_name: str
) -> str | None:
    """Attr name if *node* mutates ``self.<attr>`` in place, else None."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets = (
            node.targets
            if isinstance(node, (ast.Assign, ast.Delete))
            else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == self_name
            ):
                return target.value.attr
    elif isinstance(node, ast.Call):
        func_expr = node.func
        if (
            isinstance(func_expr, ast.Attribute)
            and func_expr.attr in MUTATOR_METHODS
            and isinstance(func_expr.value, ast.Attribute)
            and isinstance(func_expr.value.value, ast.Name)
            and func_expr.value.value.id == self_name
        ):
            return func_expr.value.attr
    return None
