"""R019: matchers must emit through the sink protocol, not a local list.

The unified enumeration pipeline routes every emitted match through a
:class:`repro.core.sinks.ResultSink` — that single seam is what makes
``limit``, ``order_by`` and ``mode`` behave identically across matchers,
and what lets a satisfied sink stop the DFS early.  A matcher-internal
``matches.append(...)`` bypasses the seam: the match never reaches the
sink, so limits don't fire, top-k heaps don't see it, and count-only
runs silently retain memory.  Call ``sink.accept(match)`` instead.

The accumulation that *implements* the sinks (``repro.core.sinks``) is
exempt.  The brute-force oracle's reference path deliberately stays
sink-free — sharing no result-path code with the pipeline under test is
what makes it a trustworthy differential oracle — and escapes with a
pragma::

    matches.append(match)  # reprolint: disable=R019 -- oracle reference path
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["SinkProtocolBypassRule"]

#: Receiver names that read as "the result accumulator".
_ACCUMULATORS = {"matches", "_matches"}

#: The module allowed to accumulate: it *is* the sink implementation.
_EXEMPT_MODULES = {"repro.core.sinks"}


def _accumulator_name(call: ast.Call) -> str | None:
    """``matches``-like receiver of an ``.append`` call, or ``None``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name) and receiver.id in _ACCUMULATORS:
        return receiver.id
    if (
        isinstance(receiver, ast.Attribute)
        and receiver.attr in _ACCUMULATORS
    ):
        return receiver.attr
    return None


@register_rule
class SinkProtocolBypassRule(Rule):
    id = "R019"
    name = "sink-protocol-bypass"
    description = (
        "Matcher code must push matches through sink.accept(), not "
        "accumulate them in a matches list of its own."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        in_scope = ctx.module.startswith(
            ("repro.core.", "repro.baselines.")
        ) or ctx.module in ("repro.core", "repro.baselines")
        if not in_scope or ctx.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _accumulator_name(node)
            if name is None:
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{name}.append(...) bypasses the result-sink protocol; "
                "emit through sink.accept(match) so limit/order_by/mode "
                "apply uniformly",
            )
