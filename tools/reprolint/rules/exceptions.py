"""R002: no bare ``except:`` and no silently swallowed broad exceptions.

A bare ``except:`` (or an ``except Exception:`` whose body is just
``pass``) inside the search machinery can hide an infeasible-constraint
error or a budget overrun and turn a crash into a silently wrong match
count — the worst failure mode for code whose whole point is exact
agreement with a brute-force oracle.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..astutil import dotted_tail
from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["SwallowedExceptionRule"]

_BROAD = {"Exception", "BaseException"}


def _is_noop(body: list[ast.stmt]) -> bool:
    """True if the handler body does nothing (pass / bare ellipsis)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    id = "R002"
    name = "swallowed-exception"
    description = (
        "No bare `except:`; no `except Exception:` whose body only "
        "passes — failures in search paths must surface, not vanish."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "too; name the exception type",
                )
                continue
            caught = dotted_tail(node.type)
            if caught in _BROAD and _is_noop(node.body):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"`except {caught}` silently swallows the error; "
                    "handle it, log it, or narrow the type",
                )
