"""R008: no float equality comparisons on timestamps.

Timestamps in this codebase are integers by contract
(``TemporalEdge.t: int``); gaps may be ``math.inf`` but concrete times
never carry fractions.  An ``==``/``!=`` against a float literal (or a
``float(...)`` coercion) therefore signals either a unit bug or a
floating-point round-trip that will miss matches non-deterministically.
Compare against integers, or use windows (``lo <= t <= hi``) as the STN
machinery does.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["FloatTimestampEqualityRule"]


def _is_float_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register_rule
class FloatTimestampEqualityRule(Rule):
    id = "R008"
    name = "float-timestamp-eq"
    description = (
        "No ==/!= against float literals or float() coercions: "
        "timestamps are integers; use integer compares or windows."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_float_expr(operand) for operand in operands):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "equality against a float; timestamps are integral — "
                    "compare ints or use a window check",
                )
