"""R003: frozen query-plan structures are never mutated after construction.

``TCQ``, ``TCQPlus`` and ``TCF`` are frozen dataclasses shared between a
matcher's ``prepare()`` and every subsequent ``run()``; the engine and the
continuous matcher assume a built plan is immutable (re-runs, snapshots,
cross-thread reuse).  ``object.__setattr__`` defeats the freeze silently,
so the rule flags it anywhere outside ``__post_init__`` (the one sanctioned
escape hatch of frozen dataclasses), along with plain or ``setattr``-based
attribute writes through a variable that names a plan
(``tcq``/``tcq_plus``/``tcf``/``plan`` or an attribute thereof).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["FrozenPlanMutationRule"]

#: Variable / attribute names conventionally bound to plan structures.
_PLAN_NAMES = {"tcq", "tcq_plus", "tcqp", "tcf", "plan"}


def _names_plan(node: ast.expr) -> bool:
    """Does this expression read a plan-named variable or attribute?"""
    if isinstance(node, ast.Name):
        return node.id in _PLAN_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _PLAN_NAMES
    return False


def _walk_outside_post_init(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that skips ``__post_init__`` bodies entirely."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if (
            isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef))
            and current.name == "__post_init__"
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


@register_rule
class FrozenPlanMutationRule(Rule):
    id = "R003"
    name = "frozen-plan-mutation"
    description = (
        "Never mutate TCQ/TCQ+/TCF plans after construction: no "
        "object.__setattr__ outside __post_init__, no attribute writes "
        "through plan-named variables."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_repro:
            return
        for node in _walk_outside_post_init(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                yield from self._check_write(ctx, node)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        if ctx.pragmas.is_disabled(self.id, node.lineno):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "object.__setattr__ defeats frozen dataclasses; only "
                "__post_init__ may use it",
            )
        elif (
            isinstance(func, ast.Name)
            and func.id == "setattr"
            and node.args
            and _names_plan(node.args[0])
        ):
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "setattr() on a query plan mutates a frozen structure",
            )

    def _check_write(
        self, ctx: FileContext, node: ast.Assign | ast.AugAssign | ast.Delete
    ) -> Iterator[Finding]:
        if ctx.pragmas.is_disabled(self.id, node.lineno):
            return
        if isinstance(node, ast.Assign):
            targets: list[ast.expr] = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            targets = node.targets
        for target in targets:
            if isinstance(target, ast.Attribute) and _names_plan(target.value):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"write to plan attribute `.{target.attr}`: TCQ/TCQ+/"
                    "TCF are frozen; build a new plan instead",
                )
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute
            ) and _names_plan(target.value.value):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "item write into a plan field: plan tables are tuples "
                    "by contract; rebuild the plan instead",
                )
