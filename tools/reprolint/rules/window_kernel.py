"""R012: no expand-then-filter loops over full timestamp runs.

Per-pair timestamp runs are stored sorted; the window kernel
(``repro.core.windows``) turns every temporal-constraint check into a
bisected slice read, so hot paths should never iterate a *full* run and
discard elements with a per-element gap test.  A ``for t in
g.timestamps(u, v)`` whose body compares the loop variable against a
constraint gap (or calls ``is_satisfied``) re-introduces exactly the
O(run-length) expand-then-filter pattern the kernel removed — use
``timestamps_in_window`` / ``windowed_times`` instead.

Deliberate full-run scans (oracles, the dict-backend fallbacks) opt out
with ``# reprolint: disable=R012``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["TimestampExpandThenFilterRule"]

#: Accessors returning a *full* per-pair timestamp run.
_RUN_ACCESSORS = frozenset(
    {"timestamps", "timestamps_list", "timestamps_with_label"}
)


def _loop_target_names(target: ast.expr) -> set[str]:
    return {
        node.id
        for node in ast.walk(target)
        if isinstance(node, ast.Name)
    }


def _mentions_name(node: ast.expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in ast.walk(node)
    )


def _is_gap_expr(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "gap":
            return True
        if isinstance(sub, ast.Name) and "gap" in sub.id.lower():
            return True
    return False


def _filters_on_gap(body: list[ast.stmt], names: set[str]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                touches_target = any(
                    _mentions_name(op, names) for op in operands
                )
                if touches_target and any(map(_is_gap_expr, operands)):
                    return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "is_satisfied"
            ):
                return True
    return False


@register_rule
class TimestampExpandThenFilterRule(Rule):
    id = "R012"
    name = "timestamp-expand-then-filter"
    description = (
        "No loops over full timestamp runs that filter per element on a "
        "constraint gap; read the feasible window via the bisect "
        "accessors (timestamps_in_window / windowed_times) instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            call = node.iter
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _RUN_ACCESSORS
            ):
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            names = _loop_target_names(node.target)
            if not names:
                continue
            if _filters_on_gap(node.body, names):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"loop over full run .{call.func.attr}(...) filters "
                    "per timestamp on a constraint gap; bisect the "
                    "feasible window instead (core.windows)",
                )
