"""R010: tracer spans must be opened with ``with tracer.span(...)``.

A :meth:`repro.obs.Tracer.span` call returns a context manager whose
``__exit__`` records the end timestamp and pops the thread-local span
stack.  Calling it without entering it (``sp = tracer.span(...)``,
``tracer.span(...)`` as a bare statement) opens a span that is never
closed: the stack stays unbalanced for the rest of the thread's life and
every later span parents under the leaked one, corrupting the exported
trace quietly — nothing crashes, the Chrome JSON just lies.  Manual
``__enter__``/``__exit__`` pairs are equally fragile under exceptions,
so the only accepted form outside :mod:`repro.obs` itself is the ``with``
statement (``contextlib.ExitStack.enter_context`` is also accepted — it
guarantees the paired exit).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["SpanDisciplineRule"]


def _is_span_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "span"
    )


def _wrapped_calls(node: ast.Call) -> Iterable[ast.AST]:
    """Span calls passed to an exit-stack style ``enter_context(...)``."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "enter_context":
        yield from node.args


@register_rule
class SpanDisciplineRule(Rule):
    id = "R010"
    name = "span-not-context-managed"
    description = (
        "tracer.span(...) must be entered via 'with' (or an ExitStack) so "
        "the span is closed and the thread-local stack stays balanced."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module == "repro.obs" or ctx.module.startswith("repro.obs."):
            return  # the tracer implementation manages spans by hand
        managed: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
            elif isinstance(node, ast.Call):
                for wrapped in _wrapped_calls(node):
                    managed.add(id(wrapped))
        for node in ast.walk(ctx.tree):
            if not _is_span_call(node) or id(node) in managed:
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "span opened without 'with': the span never closes and "
                "every later span on this thread parents under the leak",
            )
