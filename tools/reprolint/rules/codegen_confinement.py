"""R020: dynamic code execution is confined to ``repro.core.codegen``.

Per-plan specialised enumerators are built with ``compile()`` + ``exec``
in exactly one place — :mod:`repro.core.codegen` — where the generated
source is deterministic (a pure function of the prepared plan), is
registered with :mod:`linecache` for tracebacks, and runs against a
namespace the module controls completely.  Those properties are the
whole safety argument for executing generated code, and they hold only
because every call site lives behind one reviewed seam.

A ``compile``/``exec``/``eval`` call anywhere else in the tree has none
of those guarantees: it is either a second codegen path drifting from
the first, or string evaluation of data that was never meant to be code.
Route new code generation through ``repro.core.codegen``; for the rare
deliberate exception (a REPL-style tool, say) escape with a pragma::

    exec(snippet, ns)  # reprolint: disable=R020 -- interactive sandbox
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["CodegenConfinementRule"]

#: Builtin callables that turn strings into running code.
_DYNAMIC_EXEC = {"compile", "exec", "eval"}

#: The one module allowed to call them: the codegen seam itself.
_EXEMPT_MODULES = {"repro.core.codegen"}


def _dynamic_call_name(call: ast.Call) -> str | None:
    """``compile``/``exec``/``eval`` called as a bare builtin, or None.

    Attribute calls (``re.compile``, ``graph.compile()``) are method
    lookups on other objects and never reach the builtins, so only bare
    :class:`ast.Name` callees count.
    """
    func = call.func
    if isinstance(func, ast.Name) and func.id in _DYNAMIC_EXEC:
        return func.id
    return None


@register_rule
class CodegenConfinementRule(Rule):
    id = "R020"
    name = "codegen-confinement"
    description = (
        "compile()/exec()/eval() must not appear outside "
        "repro.core.codegen, the one reviewed dynamic-code seam."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dynamic_call_name(node)
            if name is None:
                continue
            if ctx.pragmas.is_disabled(self.id, node.lineno):
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{name}(...) executes dynamically built code outside "
                "repro.core.codegen; generate code through that module's "
                "reviewed seam instead",
            )
