"""R015: the global lock-acquisition graph must be acyclic.

Deadlock needs two threads acquiring the same pair of locks in opposite
orders.  The phase-1 index records every *ordered* acquisition — lock B
entered while lock A is held — from two sources:

* nested ``with self.a: ... with self.b:`` regions inside one method;
* call-mediated nesting: a method of class X holding ``X._lock`` calls
  ``self.<attr>.m(...)`` where ``__init__`` bound ``attr`` to class Y and
  ``Y.m`` acquires ``Y._lock`` (resolved cross-file through the index's
  ``attr_types`` map), and likewise plain ``self.helper()`` calls whose
  helper acquires a second lock of the same class.

Nodes are qualified ``ClassName._lock`` names, so identically-named locks
of different classes stay distinct.  Any strongly connected component
with ≥2 nodes (or a self-loop through calls) is a potential ABBA
deadlock and is reported once per participating edge.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..findings import Finding
from ..project import ClassIndex, ProjectIndex
from ..registry import Rule, register_rule

__all__ = ["LockOrderRule"]


class _Edge:
    __slots__ = ("held", "acquired", "rel_path", "line")

    def __init__(
        self, held: str, acquired: str, rel_path: str, line: int
    ) -> None:
        self.held = held
        self.acquired = acquired
        self.rel_path = rel_path
        self.line = line


@register_rule
class LockOrderRule(Rule):
    id = "R015"
    name = "lock-ordering"
    description = (
        "Nested lock acquisitions (direct `with` nesting or through "
        "cross-class calls) must form an acyclic order; cycles are "
        "potential ABBA deadlocks."
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Finding]:
        edges = list(self._collect_edges(project))
        cyclic = _nodes_in_cycles(edges)
        seen: set[tuple[str, str, int]] = set()
        for edge in edges:
            if edge.held not in cyclic or edge.acquired not in cyclic:
                continue
            key = (edge.held, edge.acquired, edge.line)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                edge.rel_path,
                edge.line,
                0,
                f"lock-order cycle: `{edge.acquired}` acquired while "
                f"`{edge.held}` is held, and the reverse order exists "
                "elsewhere; pick one global order",
            )

    def _collect_edges(self, project: ProjectIndex) -> Iterator[_Edge]:
        for cls in project.classes:
            # Direct nesting inside one method body.
            for raw in cls.lock_edges:
                yield _Edge(
                    f"{cls.name}.{raw.held}",
                    f"{cls.name}.{raw.acquired}",
                    cls.rel_path,
                    raw.line,
                )
            # Call-mediated nesting.
            for summary in cls.methods.values():
                for call in summary.calls:
                    if not call.locks_held:
                        continue
                    for acquired in self._acquired_by_call(
                        project, cls, call.receiver, call.method
                    ):
                        for held in call.locks_held:
                            held_q = f"{cls.name}.{held}"
                            if held_q != acquired:
                                yield _Edge(
                                    held_q,
                                    acquired,
                                    cls.rel_path,
                                    call.line,
                                )

    def _acquired_by_call(
        self,
        project: ProjectIndex,
        cls: ClassIndex,
        receiver: str | None,
        method: str,
    ) -> Iterator[str]:
        if receiver is None:
            summary = cls.methods.get(method)
            if summary is not None:
                for lock in summary.acquires:
                    yield f"{cls.name}.{lock}"
            return
        type_name = cls.attr_types.get(receiver)
        if type_name is None:
            return
        for target in project.classes_named(type_name):
            summary = target.methods.get(method)
            if summary is not None:
                for lock in summary.acquires:
                    yield f"{target.name}.{lock}"


def _nodes_in_cycles(edges: list[_Edge]) -> set[str]:
    """Nodes on some cycle: members of a ≥2-node SCC, or self-looped."""
    graph: dict[str, set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
        graph.setdefault(edge.acquired, set())

    # Tarjan's SCC, iterative to keep recursion depth bounded.
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    cyclic: set[str] = set()
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(graph[root]))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)
                elif component[0] in graph.get(component[0], set()):
                    cyclic.add(component[0])
    return cyclic
