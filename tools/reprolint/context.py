"""Per-file lint context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from .pragmas import PragmaIndex

__all__ = ["FileContext"]


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the nearest ``src`` directory.

    ``.../src/repro/core/tcq.py`` -> ``repro.core.tcq``;
    ``benchmarks/bench_x.py`` -> ``bench_x``.  Works for fixture trees in
    tests as long as they mirror the ``src/<pkg>/...`` layout.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    else:
        parts = [path.name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FileContext:
    """Everything a rule may need about one source file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex
    module: str

    @classmethod
    def load(cls, path: Path, rel_path: str) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel_path)
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            pragmas=PragmaIndex.from_source(source),
            module=_module_name(path),
        )

    @property
    def in_repro(self) -> bool:
        """True for modules of the ``repro`` package (the shipped library)."""
        return self.module == "repro" or self.module.startswith("repro.")

    @property
    def in_benchmarks(self) -> bool:
        """True for files under a ``benchmarks`` directory."""
        return "benchmarks" in self.path.parts
