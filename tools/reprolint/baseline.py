"""Findings-baseline ratchet.

Grandfathered findings live in a checked-in JSON file; CI fails only on
findings *not* in the baseline, so new violations are blocked while the
backlog shrinks monotonically (regenerating the baseline can only be
done deliberately, via ``--update-baseline``).

Entries are keyed on ``(path, rule_id, message)`` — deliberately
line-free, so unrelated edits that shift line numbers don't churn the
file — and stored as a multiset: two identical findings in one file need
two baseline entries, so *adding* a second instance of a baselined
violation still fails.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

__all__ = [
    "baseline_key",
    "filter_baselined",
    "load_baseline",
    "write_baseline",
]

_VERSION = 1


def baseline_key(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


def load_baseline(path: Path) -> Counter[str]:
    """Load the baseline multiset; missing file means empty baseline."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    counts: Counter[str] = Counter()
    for entry in payload.get("findings", []):
        key = f"{entry['path']}::{entry['rule_id']}::{entry['message']}"
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialise *findings* as the new baseline (sorted, line-free)."""
    counts: Counter[tuple[str, str, str]] = Counter(
        (f.path, f.rule_id, f.message) for f in findings
    )
    entries = [
        {"path": p, "rule_id": r, "message": m, "count": c}
        for (p, r, m), c in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def filter_baselined(
    findings: list[Finding], baseline: Counter[str]
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed_count) against the baseline.

    Consumes baseline entries as a multiset: the first N occurrences of a
    baselined key are suppressed, any beyond that are new findings.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = baseline_key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
