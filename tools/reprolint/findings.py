"""Finding: one reported rule violation, with stable ordering and JSON form."""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """A single reprolint diagnostic.

    Sort order (path, line, col, rule_id) is the order findings are
    printed in, so output is deterministic across runs.
    """

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def format(self) -> str:
        """Human-readable one-liner, ``path:line:col: RXXX [name] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return asdict(self)
