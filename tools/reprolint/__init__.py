"""reprolint — repo-specific static analysis for the TCSM reproduction.

The rules enforce the cross-cutting invariants that keep three TCSM
matchers, a brute-force oracle, and nine CSM baselines agreeing on
matching semantics (see docs/TOOLING.md for the rule table).  Run with::

    python -m tools.reprolint src/repro benchmarks

Programmatic use: :func:`lint_paths` returns a :class:`LintResult`;
:func:`all_rules` exposes the registry for tooling/tests.
"""

from __future__ import annotations

from .findings import Finding
from .registry import Rule, all_rules, register_rule
from .runner import LintResult, lint_paths

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
]
