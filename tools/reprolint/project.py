"""Phase 1 of the two-phase analyzer: the whole-program symbol index.

Before any dataflow-aware rule runs, the runner loads every file and
builds one :class:`ProjectIndex` over the whole scanned tree.  The index
records, per class:

* lock attributes (``self._lock = threading.Lock()`` and friends, plus
  any ``with self.<attr>:`` whose attribute is conventionally named
  ``*lock``);
* every ``self.<attr>`` access site, tagged read/write and with the set
  of locks held at that point (``with self._lock:`` regions, including
  nesting);
* per-method summaries: which locks a method acquires, and every
  intra-class / attribute-object call together with the locks held at
  the call site (rules use this to propagate lock context one level into
  helper methods);
* lock-ordering edges (lock held -> lock acquired), both from nested
  ``with`` regions and through resolvable calls;
* ``self.<attr> = ClassName(...)`` bindings in ``__init__``, so calls
  through composed objects (``self.plans.get_or_build(...)``) resolve to
  the callee class across files.

Project-wide, it also records every ``@dataclass(frozen=True)`` class
and every callable handed to ``threading.Thread(target=...)`` or an
executor ``submit``/``map`` — the entry points from which concurrent
execution (and therefore lock discipline) is reachable.

The index is purely syntactic per file but *cross-file in aggregation*:
rules R013–R015 consume it in :meth:`Rule.check_project` after every
file has been parsed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .context import FileContext
from .pragmas import PragmaIndex

__all__ = [
    "CONSTRUCTION_METHODS",
    "MUTATOR_METHODS",
    "AttrAccess",
    "ClassIndex",
    "InternalCall",
    "LockEdge",
    "MethodSummary",
    "ProjectIndex",
    "build_project_index",
]

#: Constructor names whose result is a lock-like synchronisation object.
_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}

#: Method names that mutate their receiver in place (used to classify an
#: access like ``self._entries.pop(...)`` as a *write* to ``_entries``).
MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
    "__setitem__",
}

#: Methods that run before an instance can be shared across threads.
CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__init_subclass__"}
)


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` access site inside a method."""

    attr: str
    line: int
    col: int
    method: str
    is_write: bool
    locks_held: frozenset[str]


@dataclass(frozen=True)
class InternalCall:
    """A call through ``self`` recorded with its lock context.

    ``receiver`` is ``None`` for ``self.method(...)`` and the attribute
    name for ``self.<receiver>.method(...)``.
    """

    receiver: str | None
    method: str
    line: int
    locks_held: frozenset[str]


@dataclass(frozen=True)
class LockEdge:
    """``held`` was already held when ``acquired`` was entered."""

    held: str
    acquired: str
    line: int


@dataclass
class MethodSummary:
    """Lock-relevant facts about one method body."""

    name: str
    lineno: int
    acquires: frozenset[str] = frozenset()
    calls: tuple[InternalCall, ...] = ()


@dataclass
class ClassIndex:
    """Everything the concurrency rules need to know about one class."""

    name: str
    module: str
    rel_path: str
    lineno: int
    frozen_dataclass: bool
    bases: tuple[str, ...]
    lock_attrs: frozenset[str]
    accesses: tuple[AttrAccess, ...]
    methods: dict[str, MethodSummary]
    attr_types: dict[str, str]
    lock_edges: tuple[LockEdge, ...]

    def call_sites_of(self, method: str) -> list[InternalCall]:
        """Every intra-class ``self.<method>()`` call site."""
        return [
            call
            for summary in self.methods.values()
            for call in summary.calls
            if call.receiver is None and call.method == method
        ]

    def inherited_locks(self, method: str) -> frozenset[str]:
        """Locks provably held whenever *method* runs, via its callers.

        One level deep by design: a helper called *only* from inside
        ``with self._lock:`` regions inherits ``_lock``; a method with no
        intra-class callers (an entry point) inherits nothing.
        """
        sites = self.call_sites_of(method)
        if not sites:
            return frozenset()
        common = set(sites[0].locks_held)
        for call in sites[1:]:
            common &= call.locks_held
        return frozenset(common)


@dataclass
class ProjectIndex:
    """The phase-1 output: per-class facts plus project-wide tables."""

    contexts: tuple[FileContext, ...]
    classes: tuple[ClassIndex, ...]
    frozen_classes: frozenset[str]
    thread_entry_points: frozenset[str]
    _by_path: dict[str, FileContext] = field(default_factory=dict)
    _by_name: dict[str, list[ClassIndex]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_path = {ctx.rel_path: ctx for ctx in self.contexts}
        for cls in self.classes:
            self._by_name.setdefault(cls.name, []).append(cls)

    def pragmas(self, rel_path: str) -> PragmaIndex | None:
        """The pragma index of *rel_path*, if it was scanned."""
        ctx = self._by_path.get(rel_path)
        return ctx.pragmas if ctx is not None else None

    def classes_named(self, name: str) -> list[ClassIndex]:
        """Indexed classes called *name*, across every scanned file."""
        return self._by_name.get(name, [])


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _call_tail(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _self_attr(node: ast.expr, self_name: str) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _lock_attrs_of(node: ast.ClassDef) -> frozenset[str]:
    """Prepass: attributes holding synchronisation objects.

    Detected by construction (``self.X = threading.Lock()``) or by the
    ``*lock`` naming convention on a ``with self.X:`` context.
    """
    locks: set[str] = set()
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = method.args.args[0].arg if method.args.args else "self"
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign):
                value = sub.value
                if (
                    isinstance(value, ast.Call)
                    and _call_tail(value.func) in _LOCK_FACTORIES
                ):
                    for target in sub.targets:
                        attr = _self_attr(target, self_name)
                        if attr is not None:
                            locks.add(attr)
            elif isinstance(sub, ast.With):
                for item in sub.items:
                    attr = _self_attr(item.context_expr, self_name)
                    if attr is not None and attr.lower().endswith("lock"):
                        locks.add(attr)
    return frozenset(locks)


class _MethodVisitor(ast.NodeVisitor):
    """Walk one method body tracking the set of lock attrs held."""

    def __init__(
        self, method_name: str, self_name: str, lock_attrs: frozenset[str]
    ) -> None:
        self.method = method_name
        self.self_name = self_name
        self.lock_attrs = lock_attrs
        self.held: tuple[str, ...] = ()
        self.acquires: set[str] = set()
        self.accesses: list[AttrAccess] = []
        self.calls: list[InternalCall] = []
        self.lock_edges: list[LockEdge] = []

    # -- lock regions ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            attr = _self_attr(item.context_expr, self.self_name)
            if attr is not None and attr in self.lock_attrs:
                self.acquires.add(attr)
                for held in self.held:
                    if held != attr:
                        self.lock_edges.append(
                            LockEdge(held, attr, node.lineno)
                        )
                entered.append(attr)
        self.held = self.held + tuple(entered)
        for stmt in node.body:
            self.visit(stmt)
        if entered:
            self.held = self.held[: len(self.held) - len(entered)]

    # -- nested scopes keep the current lock context --------------------
    # (a closure defined under a lock does not *run* under it, but the
    # common in-repo pattern is immediate use; rules stay conservative)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            attr = _self_attr(receiver, self.self_name)
            if attr is not None:
                # self.<attr>.method(...): a call through a composed
                # object; also a potential in-place write to the attr.
                self.calls.append(
                    InternalCall(
                        attr, func.attr, node.lineno, frozenset(self.held)
                    )
                )
                self.accesses.append(
                    AttrAccess(
                        attr=attr,
                        line=receiver.lineno,
                        col=receiver.col_offset,
                        method=self.method,
                        is_write=func.attr in MUTATOR_METHODS,
                        locks_held=frozenset(self.held),
                    )
                )
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
            if (
                isinstance(receiver, ast.Name)
                and receiver.id == self.self_name
            ):
                self.calls.append(
                    InternalCall(
                        None, func.attr, node.lineno, frozenset(self.held)
                    )
                )
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        self.generic_visit(node)

    # -- attribute access classification --------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node, self.self_name)
        if attr is not None:
            self.accesses.append(
                AttrAccess(
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset,
                    method=self.method,
                    is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    locks_held=frozenset(self.held),
                )
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        attr = _self_attr(node.value, self.self_name)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            # self.attr[k] = v / del self.attr[k]: in-place write to attr.
            self.accesses.append(
                AttrAccess(
                    attr=attr,
                    line=node.value.lineno,
                    col=node.value.col_offset,
                    method=self.method,
                    is_write=True,
                    locks_held=frozenset(self.held),
                )
            )
            self.visit(node.slice)
            return
        self.generic_visit(node)


def _attr_types_of(node: ast.ClassDef) -> dict[str, str]:
    """``self.<attr> = ClassName(...)`` bindings in ``__init__``."""
    types: dict[str, str] = {}
    for method in node.body:
        if (
            not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
            or method.name != "__init__"
        ):
            continue
        self_name = method.args.args[0].arg if method.args.args else "self"
        for sub in ast.walk(method):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            if not isinstance(value, ast.Call):
                continue
            tail = _call_tail(value.func)
            if tail is None or not tail[:1].isupper():
                continue
            for target in sub.targets:
                attr = _self_attr(target, self_name)
                if attr is not None:
                    types[attr] = tail
    return types


def _index_class(ctx: FileContext, node: ast.ClassDef) -> ClassIndex:
    lock_attrs = _lock_attrs_of(node)
    accesses: list[AttrAccess] = []
    methods: dict[str, MethodSummary] = {}
    lock_edges: list[LockEdge] = []
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = method.args.args[0].arg if method.args.args else "self"
        visitor = _MethodVisitor(method.name, self_name, lock_attrs)
        for stmt in method.body:
            visitor.visit(stmt)
        accesses.extend(visitor.accesses)
        lock_edges.extend(visitor.lock_edges)
        methods[method.name] = MethodSummary(
            name=method.name,
            lineno=method.lineno,
            acquires=frozenset(visitor.acquires),
            calls=tuple(visitor.calls),
        )
    bases = tuple(
        tail for base in node.bases if (tail := _call_tail(base)) is not None
    )
    return ClassIndex(
        name=node.name,
        module=ctx.module,
        rel_path=ctx.rel_path,
        lineno=node.lineno,
        frozen_dataclass=_is_frozen_dataclass(node),
        bases=bases,
        lock_attrs=lock_attrs,
        accesses=tuple(accesses),
        methods=methods,
        attr_types=_attr_types_of(node),
        lock_edges=tuple(lock_edges),
    )


def _thread_entry_points(tree: ast.Module) -> set[str]:
    """Callable names handed to Thread(target=...)/submit/map."""
    entries: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        tail = _call_tail(node.func)
        if tail == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    name = _call_tail(kw.value)
                    if name is not None:
                        entries.add(name)
        elif tail in ("submit", "map") and node.args:
            name = _call_tail(node.args[0])
            if name is not None:
                entries.add(name)
    return entries


def build_project_index(contexts: list[FileContext]) -> ProjectIndex:
    """Walk every parsed file once and assemble the project index."""
    classes: list[ClassIndex] = []
    frozen: set[str] = set()
    entries: set[str] = set()
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                indexed = _index_class(ctx, node)
                classes.append(indexed)
                if indexed.frozen_dataclass:
                    frozen.add(indexed.name)
        entries |= _thread_entry_points(ctx.tree)
    return ProjectIndex(
        contexts=tuple(contexts),
        classes=tuple(classes),
        frozen_classes=frozenset(frozen),
        thread_entry_points=frozenset(entries),
    )
