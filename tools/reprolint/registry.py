"""Rule base class and the rule registry.

Every rule subclasses :class:`Rule` and registers itself with
:func:`register_rule`; the runner instantiates a fresh rule object per lint
run, feeds it every file via :meth:`Rule.check_file`, then collects
cross-file findings from :meth:`Rule.finalize`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, ClassVar

from .context import FileContext
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectIndex

__all__ = ["Rule", "all_rules", "register_rule"]


class Rule:
    """One lint rule.  Subclasses set the class metadata and override hooks.

    ``check_file`` runs once per scanned file and may also accumulate
    cross-file state on ``self``; ``check_project`` runs once after every
    file has been parsed, against the phase-1 whole-program index
    (dataflow-aware rules live here); ``finalize`` runs last and reports
    findings that only need the rule's own accumulated state (e.g. the
    algorithm-registry check).
    """

    id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "ProjectIndex") -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()

    def finding(
        self,
        ctx_or_path: FileContext | str,
        line: int,
        col: int,
        message: str,
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        path = (
            ctx_or_path
            if isinstance(ctx_or_path, str)
            else ctx_or_path.rel_path
        )
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


_RULES: dict[str, type[Rule]] = {}  # reprolint: disable=R016 -- populated only at import time by @register_rule


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *cls* to the global rule registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} must set `id` and `name`")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules, keyed and sorted by id."""
    return dict(sorted(_RULES.items()))


def iter_rule_classes() -> Iterator[type[Rule]]:
    for _, cls in sorted(_RULES.items()):
        yield cls
