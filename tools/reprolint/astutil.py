"""Small AST helpers shared by several rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "call_name",
    "dotted_tail",
    "iter_functions_with_class",
    "referenced_names",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def call_name(node: ast.Call) -> str | None:
    """The called name: ``f(...)`` -> ``f``; ``a.b.f(...)`` -> ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_tail(node: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def iter_functions_with_class(
    tree: ast.Module,
) -> Iterator[tuple[FunctionNode, ast.ClassDef | None]]:
    """Top-level functions and direct methods of top-level classes.

    Yields ``(function, enclosing_class_or_None)``; nested functions are
    not yielded (they are implementation detail, not public API).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node


def referenced_names(node: ast.AST) -> set[str]:
    """All plain identifiers and attribute names referenced under *node*."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.arg):
            names.add(sub.arg)
    return names
