"""Suppression pragmas.

Two forms are recognised, mirroring pylint's spelling:

* ``# reprolint: disable=R001,R002`` on the same line as a finding
  suppresses those rules for that line only; ``disable`` with no ``=``
  suppresses every rule on the line.
* ``# reprolint: disable-file=R001`` anywhere in the file suppresses the
  rule for the whole file (use sparingly; reviewers grep for it).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["PragmaIndex"]

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "every rule" (a ``disable`` pragma with no rule list).
_ALL = "*"


def _parse_rules(raw: str | None) -> frozenset[str]:
    if raw is None:
        return frozenset({_ALL})
    rules = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return frozenset(rules) if rules else frozenset({_ALL})


@dataclass
class PragmaIndex:
    """Per-file index of suppression pragmas, queried by (rule, line)."""

    file_disabled: frozenset[str] = frozenset()
    line_disabled: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        file_disabled: set[str] = set()
        line_disabled: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("kind") == "disable-file":
                file_disabled |= rules
            else:
                line_disabled[lineno] = line_disabled.get(
                    lineno, frozenset()
                ) | rules
        return cls(frozenset(file_disabled), line_disabled)

    def is_disabled(self, rule_id: str, line: int) -> bool:
        """True if *rule_id* is suppressed at *line* of this file."""
        if _ALL in self.file_disabled or rule_id in self.file_disabled:
            return True
        at_line = self.line_disabled.get(line)
        if at_line is None:
            return False
        return _ALL in at_line or rule_id in at_line
