"""Suppression and annotation pragmas.

Three forms are recognised, the first two mirroring pylint's spelling:

* ``# reprolint: disable=R001,R002`` on the same line as a finding
  suppresses those rules for that line only; ``disable`` with no ``=``
  suppresses every rule on the line.
* ``# reprolint: disable-file=R001`` anywhere in the file suppresses the
  rule for the whole file (use sparingly; reviewers grep for it).
* ``# reprolint: guarded-by(_lock)`` annotates an attribute access as an
  intentional lock-free site of a lock-guarded attribute (consumed by
  R013).  Naming the lock keeps the claim reviewable; ``guarded-by(*)``
  waives any lock.

Every pragma is also recorded verbatim in :attr:`PragmaIndex.entries`,
which the CLI's JSON report aggregates into a whole-tree pragma
inventory — the single place to audit grandfathered exceptions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["PragmaEntry", "PragmaIndex"]

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?|guarded-by)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
    r"|\s*\(\s*(?P<locks>[A-Za-z0-9_.*,\s]+?)\s*\))?"
)

#: Sentinel meaning "every rule" (a ``disable`` pragma with no rule list).
_ALL = "*"


def _parse_rules(raw: str | None) -> frozenset[str]:
    if raw is None:
        return frozenset({_ALL})
    rules = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return frozenset(rules) if rules else frozenset({_ALL})


def _parse_locks(raw: str | None) -> frozenset[str]:
    if raw is None:
        return frozenset({_ALL})
    locks = {part.strip() for part in raw.split(",") if part.strip()}
    return frozenset(locks) if locks else frozenset({_ALL})


@dataclass(frozen=True)
class PragmaEntry:
    """One pragma occurrence, retained for the whole-tree inventory."""

    line: int
    kind: str
    values: tuple[str, ...]

    def to_dict(self) -> dict[str, object]:
        return {"line": self.line, "kind": self.kind, "values": list(self.values)}


@dataclass
class PragmaIndex:
    """Per-file index of pragmas, queried by (rule, line) or line."""

    file_disabled: frozenset[str] = frozenset()
    line_disabled: dict[int, frozenset[str]] = field(default_factory=dict)
    guarded: dict[int, frozenset[str]] = field(default_factory=dict)
    entries: tuple[PragmaEntry, ...] = ()

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        file_disabled: set[str] = set()
        line_disabled: dict[int, frozenset[str]] = {}
        guarded: dict[int, frozenset[str]] = {}
        entries: list[PragmaEntry] = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match is None:
                continue
            kind = match.group("kind")
            if kind == "guarded-by":
                locks = _parse_locks(match.group("locks"))
                guarded[lineno] = guarded.get(lineno, frozenset()) | locks
                entries.append(PragmaEntry(lineno, kind, tuple(sorted(locks))))
                continue
            rules = _parse_rules(match.group("rules"))
            entries.append(PragmaEntry(lineno, kind, tuple(sorted(rules))))
            if kind == "disable-file":
                file_disabled |= rules
            else:
                line_disabled[lineno] = line_disabled.get(
                    lineno, frozenset()
                ) | rules
        return cls(
            frozenset(file_disabled), line_disabled, guarded, tuple(entries)
        )

    def is_disabled(self, rule_id: str, line: int) -> bool:
        """True if *rule_id* is suppressed at *line* of this file."""
        if _ALL in self.file_disabled or rule_id in self.file_disabled:
            return True
        at_line = self.line_disabled.get(line)
        if at_line is None:
            return False
        return _ALL in at_line or rule_id in at_line

    def guarded_by(self, line: int) -> frozenset[str]:
        """Lock names a ``guarded-by(...)`` pragma asserts for *line*.

        Empty when the line carries no such pragma; contains ``"*"`` for
        the wildcard form.
        """
        return self.guarded.get(line, frozenset())
