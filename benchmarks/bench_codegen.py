"""Compiled-enumerator speedup bar: codegen must beat the interpreter.

``MatchOptions(codegen=True)`` swaps the interpreted DFS for a
specialised enumeration function generated per (query shape, matching
order, window plan) — constraint checks unrolled, dead branches elided,
STN-closure window bounds inlined as constants.  That machinery only
earns its keep if it is actually faster, so this benchmark pins the
wall-clock win on the Exp-1-style dense workload (the same graph shape
``bench_topk.py`` uses: ~80 vertices, out-degree 12, ten timestamps per
pair, a few hundred thousand matches):

* **Speedup floor.** The compiled ``tcsm-eve`` count run must finish at
  least ``MIN_SPEEDUP``x faster than the interpreted run (compile time
  excluded — it is a prepare-time cost paid once per cached plan, and
  is reported separately).
* **Same answer.** Both runs must report the identical match count —
  a fast wrong enumerator is worse than no enumerator (the full
  bit-identical counter pin lives in
  ``tests/core/test_codegen_equivalence.py``).

The other two matchers are measured and reported for context but not
held to the floor: their interpreted inner loops carry less per-step
dispatch than EVE's vertex-prematch, so their codegen win is smaller.

Runs standalone (``python benchmarks/bench_codegen.py``, exits non-zero
on regression, writes ``BENCH_codegen.json`` for the CI artifact) and
under pytest.
"""

import json
import time
from pathlib import Path

from bench_topk import GAP, dense_graph

from repro.core import MatchOptions, MatchResult, find_matches
from repro.core.engine import create_matcher
from repro.graphs import QueryGraph, TemporalConstraints

#: The matcher held to the speedup floor (and measured for context).
ALGORITHM = "tcsm-eve"
CONTEXT_ALGORITHMS = ("tcsm-e2e", "tcsm-v2v")

#: Floor pinned by the issue: the compiled enumerator must be >= 1.3x
#: faster than the interpreted matcher on the same prepared plan.
MIN_SPEEDUP = 1.3

REPEATS = 2

OUT_PATH = Path("BENCH_codegen.json")


def _best_run(fn) -> tuple[float, "MatchResult"]:
    best_seconds = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    assert result is not None
    return best_seconds, result


def measure() -> dict[str, object]:
    """Interpreted vs compiled count runs for all three matchers."""
    graph = dense_graph()
    query = QueryGraph(["A", "B", "A", "B"], [(0, 1), (1, 2), (2, 3)])
    constraints = TemporalConstraints(
        [(0, 1, GAP), (1, 2, GAP)], num_edges=query.num_edges
    )

    def run(algorithm: str, codegen: bool) -> "MatchResult":
        return find_matches(
            query,
            constraints,
            graph,
            algorithm=algorithm,
            options=MatchOptions(mode="count", codegen=codegen),
        )

    report: dict[str, object] = {
        "algorithm": ALGORITHM,
        "temporal_edges": float(graph.num_temporal_edges),
        "min_speedup": MIN_SPEEDUP,
    }
    for algorithm in (ALGORITHM, *CONTEXT_ALGORITHMS):
        interp_seconds, interp = _best_run(lambda a=algorithm: run(a, False))
        compiled_seconds, compiled = _best_run(lambda a=algorithm: run(a, True))
        key = algorithm.replace("tcsm-", "")
        report[f"matches_{key}"] = float(interp.stats.matches)
        report[f"matches_{key}_codegen"] = float(compiled.stats.matches)
        report[f"seconds_{key}_interp"] = interp_seconds
        report[f"seconds_{key}_codegen"] = compiled_seconds
        report[f"speedup_{key}"] = interp_seconds / max(1e-9, compiled_seconds)

    # Compile cost, reported separately: a one-off prepare-time expense
    # amortised by the service's plan cache (compile once per PlanKey).
    matcher = create_matcher(
        ALGORITHM, query, constraints, graph, codegen=True
    )
    started = time.perf_counter()
    matcher.prepare()
    report["compile_seconds"] = time.perf_counter() - started
    assert matcher.compiled_source is not None
    report["compiled_source_lines"] = float(
        matcher.compiled_source.count("\n")
    )
    return report


def check(report: dict[str, object]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    key = ALGORITHM.replace("tcsm-", "")
    speedup = report[f"speedup_{key}"]
    assert isinstance(speedup, float)
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"codegen speedup {speedup:.2f}x on {ALGORITHM} is below the "
            f"{MIN_SPEEDUP:.1f}x floor over the interpreted matcher"
        )
    for algorithm in (ALGORITHM, *CONTEXT_ALGORITHMS):
        akey = algorithm.replace("tcsm-", "")
        if report[f"matches_{akey}"] != report[f"matches_{akey}_codegen"]:
            failures.append(
                f"{algorithm} compiled run counted "
                f"{report[f'matches_{akey}_codegen']:.0f} matches, "
                f"interpreted counted {report[f'matches_{akey}']:.0f}"
            )
    return failures


def test_codegen_speedup_floor() -> None:
    report = measure()
    assert check(report) == [], check(report)


def main() -> int:
    report = measure()
    print(f"temporal edges: {report['temporal_edges']:.0f}")
    for algorithm in (ALGORITHM, *CONTEXT_ALGORITHMS):
        key = algorithm.replace("tcsm-", "")
        print(
            f"{algorithm}: interpreted {report[f'seconds_{key}_interp']:.3f}s"
            f" / compiled {report[f'seconds_{key}_codegen']:.3f}s"
            f" ({report[f'speedup_{key}']:.2f}x,"
            f" {report[f'matches_{key}']:.0f} matches)"
        )
    print(
        f"compile cost: {report['compile_seconds']:.3f}s for "
        f"{report['compiled_source_lines']:.0f} generated lines"
    )
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote report -> {OUT_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
