"""Exp-3 bench (Fig. 15): runtime versus query size and constraint count.

Queries are extracted from the data graph (guaranteed-match workloads).
Expected shape: runtime grows with |q| for every algorithm; for the TCSM
family, more constraints do not hurt (E2E/EVE trend flat-to-down).
"""

import pytest

from repro.core import count_matches
from repro.datasets import extract_instance

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.mark.parametrize("size", (4, 6, 8))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_query_size(benchmark, cm_graph, algorithm, size):
    query, constraints = extract_instance(
        cm_graph, size, size + 1, num_constraints=3, seed=size
    )
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize("num_constraints", (2, 4, 6))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_constraint_count(benchmark, cm_graph, algorithm, num_constraints):
    query, constraints = extract_instance(
        cm_graph, 6, 7, num_constraints=num_constraints, seed=1
    )
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
