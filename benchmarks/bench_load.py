"""Service load baseline: closed- and open-loop JSONL query traffic.

The first load benchmark for the serving stack.  A
:class:`~repro.service.TCSMService` is stood up behind the
:class:`~repro.service.AsyncFrontDoor` and driven with a mixed request
stream shaped like real client traffic:

* **warm** — the same pattern repeated (result-cache hits, the steady
  state of a dashboard);
* **cold** — a fresh ``limit`` per request, so every one misses the
  result cache and runs the matcher;
* **count-only** — ``count_only=true`` requests (no match payloads);
* **traced** — ``trace=true`` requests exercising span capture.

Two loops, two numbers:

* **Closed loop**: a fixed client population issues requests
  back-to-back and waits for each answer — sustained QPS and the
  p50/p95/p99 latency distribution at equilibrium.
* **Open loop**: requests arrive on a fixed schedule at a multiple of
  the measured closed-loop capacity, against deliberately small
  per-tenant queues — the *shed rate* (the fraction answered with
  ``{"status": "rejected", "shed": true}``) is the overload behaviour,
  and every non-shed request must still complete cleanly.

Runs standalone (``python benchmarks/bench_load.py [--smoke]``, exits
non-zero on regression, writes ``BENCH_load.json`` for the CI
perf-trajectory artifact; scale with ``--queries``, up to the million-
query soak) and under pytest (smoke shape).
"""

import argparse
import asyncio
import json
import random
import time
from pathlib import Path

from repro.datasets import random_instance
from repro.graphs import pattern_to_dict
from repro.service import (
    AsyncFrontConfig,
    AsyncFrontDoor,
    ServiceConfig,
    TCSMService,
)

SEED = 11

#: Random-instance shape (dense enough that queries do real search work).
INSTANCE = dict(
    query_vertices=3,
    query_edges=3,
    num_constraints=2,
    max_gap=25,
    data_vertices=30,
    data_edges=2500,
    num_labels=3,
    max_time=400,
)

#: Closed-loop requests (full run); ``--smoke`` divides this by 10.
N_QUERIES = 1500

#: Concurrent closed-loop clients.
CLIENTS = 4

#: Request mix weights: (kind, weight).
MIX = (("warm", 5), ("cold", 3), ("count", 1), ("trace", 1))

#: Open-loop arrival rate as a multiple of the measured cold-query
#: service rate (the front door's actual capacity, cache misses only).
OVERLOAD_FACTOR = 3.0

#: Cold queries timed to calibrate the open-loop arrival rate.
CALIBRATION_QUERIES = 20

#: Per-tenant queue bound in the open-loop phase (small, to force
#: shedding under the deliberate overload).
OPEN_QUEUE_DEPTH = 4

#: Open-loop burst length: long enough that the arrival schedule
#: outruns service capacity rather than fitting into the queues.
OPEN_QUERIES = 200

OUT_PATH = Path("BENCH_load.json")


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (values need not be sorted)."""
    ranked = sorted(values)
    index = min(len(ranked) - 1, round(q * (len(ranked) - 1)))
    return ranked[index]


def _requests(
    n: int, seed: int = SEED, cold_only: bool = False
) -> list[dict[str, object]]:
    """A deterministic mixed request stream of length *n*.

    ``cold_only`` forces every request onto the cache-missing path —
    the open-loop phase uses it so the offered overload does real
    matcher work instead of being absorbed by the result cache.
    """
    query, constraints, _ = random_instance(seed=seed, **INSTANCE)
    pattern = pattern_to_dict(query, constraints)
    kinds = [kind for kind, weight in MIX for _ in range(weight)]
    rng = random.Random(seed + 1)
    stream: list[dict[str, object]] = []
    for i in range(n):
        kind = "cold" if cold_only else kinds[rng.randrange(len(kinds))]
        request: dict[str, object] = {
            "op": "query",
            "id": i,
            "graph": "load",
            "pattern": pattern,
            "tenant": f"t{i % 2}",
        }
        if kind == "warm":
            request["limit"] = 10
        elif kind == "cold":
            # A fresh limit per request defeats the result cache, so
            # the matcher actually runs (the cold path).
            request["limit"] = 1000 + i
        elif kind == "count":
            request["count_only"] = True
        else:  # trace
            request["limit"] = 10
            request["trace"] = True
        stream.append(request)
    return stream


def _build_service(seed: int = SEED) -> TCSMService:
    service = TCSMService(
        ServiceConfig(max_workers=2, trace_sample_rate=0.0)
    )
    _, _, graph = random_instance(seed=seed, **INSTANCE)
    service.load_graph("load", graph)
    return service


async def _closed_loop(
    front: AsyncFrontDoor, stream: list[dict[str, object]]
) -> tuple[float, list[float], int]:
    """(wall seconds, per-request latencies, error count)."""
    latencies: list[float] = []
    errors = 0
    cursor = iter(stream)

    async def client() -> None:
        nonlocal errors
        for request in cursor:
            started = time.perf_counter()
            response = await front.submit(request)
            latencies.append(time.perf_counter() - started)
            if response.get("status") != "ok":
                errors += 1

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(CLIENTS)))
    return time.perf_counter() - started, latencies, errors


async def _calibrate(
    service: TCSMService, stream: list[dict[str, object]]
) -> float:
    """Mean seconds per cold query, served back-to-back (no front door).

    This is the inverse of the single-threaded service rate — the right
    baseline for sizing the open-loop overload, because the open-loop
    front door runs one admission worker.
    """
    started = time.perf_counter()
    for request in stream:
        response = await asyncio.to_thread(service.submit, request)
        assert response.get("status") == "ok", response
    return (time.perf_counter() - started) / len(stream)


async def _open_loop(
    front: AsyncFrontDoor, stream: list[dict[str, object]], rate: float
) -> tuple[int, int, int]:
    """(issued, shed, errors) at a fixed arrival *rate* (req/s).

    Arrivals follow an absolute schedule (``start + i / rate``) rather
    than chained sleeps, so event-loop sleep granularity cannot silently
    lower the offered rate: an overshot sleep is repaid by issuing the
    next requests back-to-back.
    """
    interval = 1.0 / rate
    tasks: list[asyncio.Task[dict[str, object]]] = []
    started = time.perf_counter()
    for i, request in enumerate(stream):
        target = started + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(front.submit(request)))
    responses = await asyncio.gather(*tasks)
    shed = sum(1 for r in responses if r.get("shed"))
    errors = sum(1 for r in responses if r.get("status") == "error")
    return len(responses), shed, errors


async def _measure_async(n_queries: int, seed: int) -> dict[str, float]:
    report: dict[str, float] = {}
    with _build_service(seed) as service:
        # -- closed loop ------------------------------------------------
        stream = _requests(n_queries, seed)
        async with AsyncFrontDoor(
            service, AsyncFrontConfig(max_queue_depth=max(64, n_queries))
        ) as front:
            # One warm-up pass over the pattern, outside the clock.
            await front.submit(stream[0])
            wall, latencies, errors = await _closed_loop(front, stream)
        qps = len(latencies) / wall
        report.update(
            queries=float(len(latencies)),
            closed_wall_seconds=wall,
            closed_qps=qps,
            closed_errors=float(errors),
            latency_p50_ms=_percentile(latencies, 0.50) * 1e3,
            latency_p95_ms=_percentile(latencies, 0.95) * 1e3,
            latency_p99_ms=_percentile(latencies, 0.99) * 1e3,
        )

        # -- open loop (deliberate overload) ----------------------------
        # Calibrate against the cold path itself: time a few cache-miss
        # queries back-to-back, then offer OVERLOAD_FACTOR times that
        # service rate.  (Closed-loop QPS would overestimate capacity —
        # it is mostly warm cache hits.)
        open_count = max(OPEN_QUERIES, n_queries // 4)
        cold_stream = _requests(
            open_count + CALIBRATION_QUERIES, seed + 2, cold_only=True
        )
        calibration = cold_stream[:CALIBRATION_QUERIES]
        open_stream = cold_stream[CALIBRATION_QUERIES:]
        cold_seconds = await _calibrate(service, calibration)
        offered = OVERLOAD_FACTOR / cold_seconds
        async with AsyncFrontDoor(
            service,
            # One admission worker with small batches and queues: the
            # overload hits a bounded system, not a deep pipeline.
            AsyncFrontConfig(
                max_queue_depth=OPEN_QUEUE_DEPTH, max_batch=2, workers=1
            ),
        ) as front:
            issued, shed, errors = await _open_loop(
                front, open_stream, offered
            )
        report.update(
            open_issued=float(issued),
            cold_query_ms=cold_seconds * 1e3,
            open_offered_qps=offered,
            open_shed=float(shed),
            open_shed_rate=shed / issued,
            open_errors=float(errors),
        )

        metrics = service.metrics_snapshot()
        counters = metrics.get("counters", {})
        report["result_cache_hits"] = float(
            counters.get("result_cache_hits", 0)
        )
    return report


def measure(n_queries: int = N_QUERIES, seed: int = SEED) -> dict[str, float]:
    """All load measurements as a flat report dict."""
    return asyncio.run(_measure_async(n_queries, seed))


def check(report: dict[str, float]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    if report["closed_errors"] > 0:
        failures.append(
            f"{report['closed_errors']:.0f} closed-loop requests errored"
        )
    if report["open_errors"] > 0:
        failures.append(
            f"{report['open_errors']:.0f} open-loop requests errored "
            "(shedding must reject cleanly, not fail)"
        )
    if report["closed_qps"] <= 0:
        failures.append("closed-loop QPS is not positive")
    if report["result_cache_hits"] < 1:
        failures.append(
            "no result-cache hits: the warm fraction of the mix never "
            "hit the cache"
        )
    if not 0.0 < report["open_shed_rate"] < 1.0:
        failures.append(
            f"shed rate {report['open_shed_rate']:.3f} outside (0, 1): "
            "the deliberate overload should shed some but not all "
            "requests"
        )
    if (
        report["latency_p50_ms"] > report["latency_p95_ms"]
        or report["latency_p95_ms"] > report["latency_p99_ms"]
    ):
        failures.append("latency percentiles are not monotone")
    return failures


def test_load_baseline_smoke() -> None:
    report = measure(n_queries=N_QUERIES // 10)
    assert check(report) == [], check(report)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI shape: {N_QUERIES // 10} queries instead of {N_QUERIES}",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=None,
        help="closed-loop request count (overrides --smoke; try 1000000 "
        "for the full soak)",
    )
    args = parser.parse_args()
    n_queries = args.queries or (N_QUERIES // 10 if args.smoke else N_QUERIES)

    report = measure(n_queries=n_queries)
    print(f"closed loop:     {report['queries']:.0f} queries, "
          f"{CLIENTS} clients")
    print(f"sustained QPS:   {report['closed_qps']:.0f}")
    print(f"latency p50:     {report['latency_p50_ms']:.2f} ms")
    print(f"latency p95:     {report['latency_p95_ms']:.2f} ms")
    print(f"latency p99:     {report['latency_p99_ms']:.2f} ms")
    print(f"cache hits:      {report['result_cache_hits']:.0f}")
    print(f"cold query:      {report['cold_query_ms']:.2f} ms")
    print(f"open loop:       {report['open_issued']:.0f} queries at "
          f"{report['open_offered_qps']:.0f} req/s offered")
    print(f"shed rate:       {report['open_shed_rate']:.1%}")
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
