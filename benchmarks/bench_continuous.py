"""Extension bench: continuous TCSM vs post-filtering CSM.

Quantifies the value of temporal-constraint pruning *inside* the
incremental delta search (tcsm-stream) against the adapted baselines'
leaf post-filtering (graphflow), and the cost of disabling the STN window
pruning.  Same stream, same matches.
"""

import pytest

from repro.core import count_matches
from repro.datasets import paper_constraints, paper_query

TIGHT_GAP = 3_600  # one hour: tight constraints, maximal pruning leverage


@pytest.fixture(scope="module")
def tight_workload():
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges, gap=TIGHT_GAP)
    return query, constraints


@pytest.mark.parametrize(
    "algorithm", ("tcsm-stream", "graphflow"), ids=("tc-pruned", "post-filtered")
)
def test_continuous_vs_postfilter(benchmark, cm_graph, tight_workload, algorithm):
    query, constraints = tight_workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize(
    "use_windows", (True, False), ids=("stn-windows", "checks-only")
)
def test_window_pruning(benchmark, cm_graph, tight_workload, use_windows):
    query, constraints = tight_workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm="tcsm-stream",
        use_windows=use_windows,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
