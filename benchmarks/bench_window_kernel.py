"""Window-bisect kernel: timestamps materialised and wall-clock, by gap.

The paper's Exp-10 sweeps the constraint gap ``k``: small gaps mean each
candidate pair's sorted timestamp run contains mostly-infeasible times,
which the old expand-then-filter loops materialised and rejected one by
one.  The window kernel (:mod:`repro.core.windows`) bisects each run to
its feasible ``[lo, hi]`` slice instead, so the work it saves *grows* as
gaps tighten.  This benchmark pins that on the medium CollegeMsg
stand-in across an Exp-10-style gap sweep:

* summed over the sweep, the kernel materialises at most half the
  timestamps of the kernel-off ablation (>= 2x reduction);
* kernel-on wall-clock is no slower than kernel-off (min-of-repeats,
  with a noise tolerance).

Runs standalone (``python benchmarks/bench_window_kernel.py``, exits
non-zero on regression, ``--out report.json`` writes the report) and
under pytest.
"""

import argparse
import json
import time

from repro.core import MatchOptions, MatchResult, find_matches
from repro.datasets import load_dataset, paper_constraints, paper_query
from repro.graphs import ensure_snapshot

#: Medium synthetic dataset: ~700 vertices / ~7k temporal edges.
SCALE = 0.12
SEED = 1

SECONDS_PER_DAY = 86_400

#: Exp-10-style sweep: tight windows through multi-day gaps.
GAPS = (
    SECONDS_PER_DAY // 4,
    SECONDS_PER_DAY,
    4 * SECONDS_PER_DAY,
    7 * SECONDS_PER_DAY,
)

#: Floor pinned by the issue: the kernel must at least halve the number
#: of timestamps materialised across the sweep.
MIN_EXPANSION_REDUCTION = 2.0

#: Noise allowance for the runtime comparison (min-of-3 timings).
RUNTIME_TOLERANCE = 1.15

REPEATS = 3

ALGORITHM = "tcsm-eve"


def _best_run(fn, repeats: int = REPEATS) -> tuple[float, "MatchResult"]:
    best_seconds = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    assert result is not None
    return best_seconds, result


def measure(scale: float = SCALE, seed: int = SEED) -> dict[str, object]:
    """The full gap sweep, kernel on vs off, as a flat report dict."""
    graph = ensure_snapshot(load_dataset("CM", scale=scale, seed=seed))
    query = paper_query(1)

    sweep: list[dict[str, float]] = []
    for gap in GAPS:
        constraints = paper_constraints(
            2, num_edges=query.num_edges, gap=gap
        )

        def run(use_kernel: bool) -> "MatchResult":
            return find_matches(
                query,
                constraints,
                graph,
                algorithm=ALGORITHM,
                options=MatchOptions(collect_matches=False),
                use_window_kernel=use_kernel,
            )

        on_seconds, on = _best_run(lambda: run(True))
        off_seconds, off = _best_run(lambda: run(False))
        assert on.stats.matches == off.stats.matches  # ablation sanity
        sweep.append(
            {
                "gap": float(gap),
                "matches": float(on.stats.matches),
                "expanded_on": float(on.stats.timestamps_expanded),
                "expanded_off": float(off.stats.timestamps_expanded),
                "skipped_on": float(on.stats.timestamps_skipped),
                "seconds_on": on_seconds,
                "seconds_off": off_seconds,
            }
        )

    expanded_on = sum(row["expanded_on"] for row in sweep)
    expanded_off = sum(row["expanded_off"] for row in sweep)
    return {
        "algorithm": ALGORITHM,
        "temporal_edges": float(graph.num_temporal_edges),
        "sweep": sweep,
        "expanded_on": expanded_on,
        "expanded_off": expanded_off,
        "expansion_reduction": expanded_off / max(1.0, expanded_on),
        "seconds_on": sum(row["seconds_on"] for row in sweep),
        "seconds_off": sum(row["seconds_off"] for row in sweep),
    }


def check(report: dict[str, object]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    reduction = report["expansion_reduction"]
    assert isinstance(reduction, float)
    if reduction < MIN_EXPANSION_REDUCTION:
        failures.append(
            f"timestamps-expanded reduction {reduction:.2f}x below the "
            f"{MIN_EXPANSION_REDUCTION:.0f}x floor"
        )
    seconds_on = report["seconds_on"]
    seconds_off = report["seconds_off"]
    assert isinstance(seconds_on, float) and isinstance(seconds_off, float)
    bound = seconds_off * RUNTIME_TOLERANCE
    if seconds_on > bound:
        failures.append(
            f"kernel-on sweep {seconds_on:.4f}s slower than kernel-off "
            f"bound {bound:.4f}s"
        )
    return failures


def test_window_kernel_expansion_and_runtime() -> None:
    report = measure()
    assert check(report) == [], check(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    report = measure()
    print(f"algorithm:          {report['algorithm']}")
    print(f"temporal edges:     {report['temporal_edges']:.0f}")
    print("gap sweep (expanded on/off, seconds on/off):")
    for row in report["sweep"]:  # type: ignore[union-attr]
        print(
            f"  k={row['gap']:>8.0f}: {row['expanded_on']:>9.0f} / "
            f"{row['expanded_off']:>9.0f}   "
            f"{row['seconds_on'] * 1e3:>7.1f} / "
            f"{row['seconds_off'] * 1e3:>7.1f} ms   "
            f"({row['matches']:.0f} matches)"
        )
    print(f"expansion reduction: {report['expansion_reduction']:.2f}x")
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote report -> {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
