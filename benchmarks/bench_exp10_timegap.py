"""Exp-10 bench (Fig. 22): matches and runtime versus the time gap k.

Expected shape: match counts (extra_info) grow with k and then saturate;
runtime follows the match count.
"""

import pytest

from repro.core import count_matches
from repro.datasets import paper_constraints, paper_query

DAY = 86_400
GAPS = (0, DAY // 2, 2 * DAY, 7 * DAY)


@pytest.mark.parametrize("gap", GAPS)
def test_timegap(benchmark, cm_graph, gap):
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges, gap=gap)
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm="tcsm-eve",
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["gap_days"] = gap / DAY
