"""Exp-9 bench (Fig. 21): pruning efficiency (failed enumerations).

The timing here is secondary; the Fig. 21 metrics — total failed
enumerations and the first-failure layer — are attached as extra_info.
Expected shape: eve <= e2e < v2v failed enumerations on the same
workload.
"""

import pytest

from repro.core import RunContext, SearchStats, create_matcher

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_pruning(benchmark, cm_graph, workload, algorithm):
    query, constraints = workload

    def run():
        matcher = create_matcher(algorithm, query, constraints, cm_graph)
        matcher.prepare()
        stats = SearchStats()
        for _ in matcher.run(RunContext(stats=stats)):
            pass
        return stats

    stats = benchmark(run)
    benchmark.extra_info["failed_enumerations"] = stats.failed_enumerations
    benchmark.extra_info["first_fail_layer"] = stats.first_fail_layer
    benchmark.extra_info["matches"] = stats.matches
