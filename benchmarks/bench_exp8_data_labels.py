"""Exp-8 bench (Fig. 20): runtime versus the data graph's label count |L|.

Expected shape: more data labels thin every candidate set; all algorithms
get faster as |L| grows.
"""

import pytest

from repro.core import count_matches
from repro.datasets import load_dataset

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def graphs_by_labels():
    return {
        count: load_dataset("CM", scale=0.02, num_labels=count, seed=1)
        for count in (8, 16, 24)
    }


@pytest.mark.parametrize("num_labels", (8, 16, 24))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_data_labels(benchmark, graphs_by_labels, workload, algorithm, num_labels):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        graphs_by_labels[num_labels],
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
