"""Exp-7 bench (Fig. 19): runtime versus |L_q| (query label diversity).

Expected shape: fewer distinct query labels mean larger candidate sets;
runtimes fall as |L_q| rises, most steeply for v2v.
"""

import pytest

from repro.core import count_matches
from repro.datasets import paper_constraints, paper_query
from repro.experiments.exp_labels import relabel_query

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.mark.parametrize("num_labels", (1, 3, 6))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_query_labels(benchmark, cm_graph, algorithm, num_labels):
    query = relabel_query(paper_query(1), num_labels)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
