"""Exp-1 bench (Table III / Table V): per-algorithm matching runtime.

Regenerates Table III's comparison at benchmark scale: every algorithm on
the default workload (q1, tc2) on two dataset stand-ins.  The ordering to
look for (the paper's headline): tcsm-eve <= tcsm-e2e <= tcsm-v2v, all
well below the baselines; sj-tree and ri-ds slowest.
"""

import pytest

from repro.core import count_matches

ALGORITHMS = (
    "tcsm-eve",
    "tcsm-e2e",
    "tcsm-v2v",
    "ri-ds",
    "graphflow",
    "symbi",
    "turboflux",
    "iedyn",
    "rapidflow",
    "calig",
    "newsp",
)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_runtime_cm(benchmark, cm_graph, workload, algorithm):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize("algorithm", ("tcsm-eve", "tcsm-e2e", "tcsm-v2v"))
def test_runtime_ub(benchmark, ub_graph, workload, algorithm):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        ub_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


# One slow-baseline representative, bounded by rounds: SJ-Tree's cost is
# the point (materialised partials), not a regression to chase.
def test_runtime_sjtree(benchmark, ub_graph, workload):
    query, constraints = workload
    benchmark.pedantic(
        count_matches,
        args=(query, constraints, ub_graph),
        kwargs=dict(algorithm="sj-tree", time_budget=5.0),
        rounds=1,
        iterations=1,
    )
