"""Exp-1 bench (Table III / Table V): per-algorithm matching runtime.

Regenerates Table III's comparison at benchmark scale: every algorithm on
the default workload (q1, tc2) on two dataset stand-ins.  The ordering to
look for (the paper's headline): tcsm-eve <= tcsm-e2e <= tcsm-v2v, all
well below the baselines; sj-tree and ri-ds slowest.

Also pins the observability contract: with tracing disabled (the
default), the engine's span scaffolding must stay within 5% of driving
the matcher directly.
"""

import timeit

import pytest

from repro.core import (
    MatchOptions,
    RunContext,
    count_matches,
    create_matcher,
    find_matches,
)

ALGORITHMS = (
    "tcsm-eve",
    "tcsm-e2e",
    "tcsm-v2v",
    "ri-ds",
    "graphflow",
    "symbi",
    "turboflux",
    "iedyn",
    "rapidflow",
    "calig",
    "newsp",
)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_runtime_cm(benchmark, cm_graph, workload, algorithm):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize("algorithm", ("tcsm-eve", "tcsm-e2e", "tcsm-v2v"))
def test_runtime_ub(benchmark, ub_graph, workload, algorithm):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        ub_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


def test_disabled_tracer_overhead_under_5_percent(cm_graph, workload):
    """The no-op tracer path may cost at most 5% over a raw matcher drive.

    Both paths enumerate with the same prepared matcher; the engine path
    adds the per-query scaffolding (null spans around prepare/enumerate,
    MatchResult assembly).  The estimator is the *median of paired
    ratios*: each repeat times the two paths back to back (``timeit``
    pauses GC), so load bursts hit both sides of a ratio, and the median
    discards the bursts a minimum-of-N would still absorb.  A sustained
    burst can still skew a whole attempt, so an over-bound median earns
    one fresh measurement before failing.
    """
    query, constraints = workload
    matcher = create_matcher("tcsm-eve", query, constraints, cm_graph)
    matcher.prepare()

    def engine_path() -> None:
        find_matches(
            query, constraints, cm_graph,
            matcher=matcher, options=MatchOptions(collect_matches=False),
        )

    def raw_path() -> None:
        for _ in matcher.run(RunContext()):
            pass

    engine_path()  # warm both paths before timing
    raw_path()
    raw_timer = timeit.Timer(raw_path)
    engine_timer = timeit.Timer(engine_path)

    def measure() -> float:
        ratios = sorted(
            engine_timer.timeit(number=5) / raw_timer.timeit(number=5)
            for _ in range(21)
        )
        return ratios[len(ratios) // 2]

    overhead = measure()
    if overhead > 1.05:  # sustained burst: grant one fresh attempt
        overhead = min(overhead, measure())
    assert overhead <= 1.05, (
        f"engine (null-tracer) path runs {overhead:.3f}x the raw matcher "
        "drive; disabled tracing must stay within 5%"
    )


# One slow-baseline representative, bounded by rounds: SJ-Tree's cost is
# the point (materialised partials), not a regression to chase.
def test_runtime_sjtree(benchmark, ub_graph, workload):
    query, constraints = workload
    benchmark.pedantic(
        count_matches,
        args=(query, constraints, ub_graph),
        kwargs=dict(algorithm="sj-tree", time_budget=5.0),
        rounds=1,
        iterations=1,
    )
