"""Exp-5 bench (Fig. 18): runtime versus data-graph size |ℰ|.

Time-prefix subgraphs keep the earliest 25/50/100% of temporal edges.
Expected shape: runtime grows smoothly with |ℰ| for all TCSM algorithms.
"""

import pytest

from repro.core import count_matches

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.fixture(scope="module")
def prefixes(cm_graph):
    return {
        0.25: cm_graph.time_prefix(0.25),
        0.5: cm_graph.time_prefix(0.5),
        1.0: cm_graph,
    }


@pytest.mark.parametrize("fraction", (0.25, 0.5, 1.0))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_data_scale(benchmark, prefixes, workload, algorithm, fraction):
    query, constraints = workload
    graph = prefixes[fraction]
    count = benchmark(
        count_matches,
        query,
        constraints,
        graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
    benchmark.extra_info["temporal_edges"] = graph.num_temporal_edges
