"""Ablation: candidate filtering knobs (DESIGN.md decisions 2 and 3).

* count-based vs set-based NLF in TCSM-V2V (Definition 6 reading);
* intersecting DFS candidates with the initial NLF/LDF sets versus the
  literal label-only filter of Algorithms 2/4.
"""

import pytest

from repro.core import count_matches


@pytest.mark.parametrize(
    "count_based", (True, False), ids=("count-nlf", "set-nlf")
)
def test_nlf_mode(benchmark, cm_graph, workload, count_based):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm="tcsm-v2v",
        count_based_nlf=count_based,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize(
    "intersect", (True, False), ids=("intersect", "label-only")
)
@pytest.mark.parametrize("algorithm", ("tcsm-v2v", "tcsm-e2e", "tcsm-eve"))
def test_candidate_intersection(
    benchmark, cm_graph, workload, algorithm, intersect
):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        intersect_candidates=intersect,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
