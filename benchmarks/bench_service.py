"""Service bench: cache amortisation and partitioned fan-out.

Measures the two claims the serving subsystem makes (docs/SERVICE.md):

* **Warm beats cold.**  A plan-cache hit skips ``prepare()``, so the
  warm per-query latency must fall below half the cold latency for the
  default algorithm; a result-cache hit skips the search too and must be
  faster still.
* **Fan-out does not change answers.**  Partitioned execution (thread or
  process pool) returns exactly the single-worker match multiset; on
  hosts with >= 2 cores the process pool must also deliver > 1.5x
  throughput on a search-bound workload.  The speedup assertion is
  skipped on single-core hosts (the fan-out still runs, the hardware
  just cannot exhibit parallelism).

Run standalone for a readable report::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

import os
import statistics
import time

import pytest

from repro.datasets import load_dataset, paper_constraints, paper_query
from repro.service import ServiceConfig, TCSMService


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux fallback


def _median_query_seconds(
    service: TCSMService, graph: str, workload, repeats: int = 5, **kwargs
) -> float:
    query, constraints = workload
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        service.query(graph, query, constraints, **kwargs)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


# ----------------------------------------------------------------------
# cold vs warm cache
# ----------------------------------------------------------------------
def test_warm_plan_cache_beats_cold(cm_graph, workload):
    """Plan-cache hits must cost < 0.5x a cold prepare-and-run."""
    query, constraints = workload
    with TCSMService(ServiceConfig(max_workers=1)) as service:
        service.load_graph("cm", cm_graph)
        colds = []
        for _ in range(3):
            service.plans.clear()
            start = time.perf_counter()
            service.query(
                "cm", query, constraints, use_result_cache=False
            )
            colds.append(time.perf_counter() - start)
        cold = statistics.median(colds)
        warm = _median_query_seconds(
            service, "cm", workload, use_result_cache=False
        )
    assert warm < 0.5 * cold, f"warm {warm:.6f}s vs cold {cold:.6f}s"


def test_result_cache_hit_beats_plan_hit(cm_graph, workload):
    """Result-cache hits skip the search entirely."""
    query, constraints = workload
    with TCSMService(ServiceConfig(max_workers=1)) as service:
        service.load_graph("cm", cm_graph)
        service.query("cm", query, constraints)  # populate both caches
        plan_hit = _median_query_seconds(
            service, "cm", workload, use_result_cache=False
        )
        result_hit = _median_query_seconds(service, "cm", workload)
        hit = service.query("cm", query, constraints)
    assert hit.result_cache == "hit"
    assert result_hit < plan_hit


def test_warm_query_throughput(benchmark, cm_graph, workload):
    """Steady-state QPS with both caches hot (the serving fast path)."""
    query, constraints = workload
    with TCSMService(ServiceConfig(max_workers=1)) as service:
        service.load_graph("cm", cm_graph)
        service.query("cm", query, constraints)
        result = benchmark(service.query, "cm", query, constraints)
    assert result.result_cache == "hit"
    benchmark.extra_info["matches"] = result.match_count


# ----------------------------------------------------------------------
# 1 vs N workers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "algorithm", ("tcsm-eve", "tcsm-e2e", "tcsm-v2v")
)
def test_partitioned_counts_match_single_worker(
    cm_graph, workload, algorithm
):
    """Thread fan-out returns the exact single-worker match multiset."""
    query, constraints = workload
    with TCSMService(ServiceConfig(max_workers=4)) as service:
        service.load_graph("cm", cm_graph)
        solo = service.query(
            "cm", query, constraints, algorithm=algorithm,
            workers=1, use_result_cache=False,
        )
        fanned = service.query(
            "cm", query, constraints, algorithm=algorithm,
            workers=4, use_result_cache=False,
        )
    assert fanned.partitions == 4
    assert fanned.match_count == solo.match_count
    assert sorted(m.vertex_map for m in fanned.matches) == sorted(
        m.vertex_map for m in solo.matches
    )


@pytest.mark.skipif(
    _available_cores() < 2,
    reason="multi-worker speedup needs >= 2 cores",
)
def test_process_pool_speedup(workload):
    """On multi-core hosts the process pool must beat 1.5x throughput."""
    graph = load_dataset("CM", scale=0.1, seed=1)
    query, constraints = workload
    workers = min(4, _available_cores())
    with TCSMService(
        ServiceConfig(max_workers=workers, pool="process")
    ) as service:
        service.load_graph("cm", graph)
        service.query(  # warm the plan so both timings are search-only
            "cm", query, constraints, workers=1, use_result_cache=False
        )
        solo_start = time.perf_counter()
        solo = service.query(
            "cm", query, constraints, workers=1, use_result_cache=False
        )
        solo_seconds = time.perf_counter() - solo_start
        fan_start = time.perf_counter()
        fanned = service.query(
            "cm", query, constraints, workers=workers,
            use_result_cache=False,
        )
        fan_seconds = time.perf_counter() - fan_start
    assert fanned.match_count == solo.match_count
    speedup = solo_seconds / fan_seconds
    assert speedup > 1.5, (
        f"{workers}-worker speedup {speedup:.2f}x "
        f"(solo {solo_seconds:.3f}s, fanned {fan_seconds:.3f}s)"
    )


# ----------------------------------------------------------------------
# standalone report
# ----------------------------------------------------------------------
def main() -> None:  # pragma: no cover - manual reporting entry
    cores = _available_cores()
    graph = load_dataset("CM", scale=0.1, seed=1)
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    workload = (query, constraints)
    print(f"cores={cores} graph=CM@0.1 "
          f"({graph.num_vertices}v/{graph.num_temporal_edges}e)")

    with TCSMService(ServiceConfig(max_workers=1)) as service:
        service.load_graph("cm", graph)
        service.plans.clear()
        start = time.perf_counter()
        cold_result = service.query(
            "cm", query, constraints, use_result_cache=False
        )
        cold = time.perf_counter() - start
        warm = _median_query_seconds(
            service, "cm", workload, use_result_cache=False
        )
        hit = _median_query_seconds(service, "cm", workload)
    print(f"cold={cold * 1e3:.2f}ms "
          f"(prepare {cold_result.build_seconds * 1e3:.2f}ms) "
          f"plan-hit={warm * 1e3:.2f}ms ({warm / cold:.2f}x cold) "
          f"result-hit={hit * 1e3:.2f}ms")

    for pool in ("thread", "process"):
        workers = min(4, max(2, cores))
        with TCSMService(
            ServiceConfig(max_workers=workers, pool=pool)
        ) as service:
            service.load_graph("cm", graph)
            service.query(  # warm the plan; time the search alone
                "cm", query, constraints, workers=1,
                use_result_cache=False,
            )
            solo_start = time.perf_counter()
            solo = service.query(
                "cm", query, constraints, workers=1,
                use_result_cache=False,
            )
            solo_s = time.perf_counter() - solo_start
            fan_start = time.perf_counter()
            fanned = service.query(
                "cm", query, constraints, workers=workers,
                use_result_cache=False,
            )
            fan_s = time.perf_counter() - fan_start
        assert fanned.match_count == solo.match_count
        print(f"{pool}-pool x{workers}: solo={solo_s * 1e3:.1f}ms "
              f"fanned={fan_s * 1e3:.1f}ms "
              f"speedup={solo_s / fan_s:.2f}x "
              f"matches={fanned.match_count}")


if __name__ == "__main__":  # pragma: no cover - module entry
    main()
