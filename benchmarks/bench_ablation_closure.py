"""Ablation: STN machinery (DESIGN.md decisions 1 and 4).

* ``tighten``: running matchers on the transitively closed constraint set
  (more constraints, each tighter) versus the raw set.
* ``use_windows``: V2V's joint timestamp solver with and without STN
  window pruning — the knob matters on temporally dense instances where
  V2V enumerates many timestamp combinations per embedding.
"""

import pytest

from repro.core import count_matches
from repro.datasets import load_dataset, paper_constraints, paper_query


@pytest.fixture(scope="module")
def dense_graph():
    """EE stand-in: heavy timestamp multiplicity stresses the solver."""
    return load_dataset("EE", scale=0.02, seed=1)


@pytest.mark.parametrize("tighten", (False, True), ids=("raw", "closed"))
@pytest.mark.parametrize("algorithm", ("tcsm-eve", "tcsm-e2e"))
def test_closure(benchmark, cm_graph, workload, algorithm, tighten):
    query, constraints = workload
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        tighten=tighten,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count


@pytest.mark.parametrize(
    "use_windows", (False, True), ids=("naive", "stn-windows")
)
def test_v2v_timestamp_solver(benchmark, dense_graph, use_windows):
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    count = benchmark(
        count_matches,
        query,
        constraints,
        dense_graph,
        algorithm="tcsm-v2v",
        use_windows=use_windows,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
