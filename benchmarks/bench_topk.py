"""Sink pipeline bars: limit early-exit and estimate-vs-exact speedup.

The unified result-sink refactor makes two performance promises, pinned
here on a dense synthetic graph (~80 vertices, out-degree 12, ten
timestamps per pair — a few hundred thousand matches):

* **Early exit is genuine.** A ``limit=1`` run raises
  :class:`~repro.core.sinks.StopEnumeration` out of the DFS the moment
  the first match lands in the sink, so it must expand *strictly fewer*
  timestamps than the unlimited enumeration — not just return fewer
  matches after doing the same work.
* **Estimation skips enumeration.** ``mode="estimate"`` answers from
  ``probes`` root-to-leaf HT samples without enumerating anything; on a
  graph dense enough that exact counting grinds, it must be at least
  10x faster.

* **Top-k is not slower than enumerating.** The bounded heap sees the
  full enumeration, so its win is memory and ordering — but its
  non-admitting path (the overwhelmingly common case once the heap is
  full) must stay allocation-free, so an
  ``order_by="earliest", limit=k`` run must not exceed the wall clock
  of a plain full enumeration that collects every match.

Runs standalone (``python benchmarks/bench_topk.py``, exits non-zero on
regression, writes ``BENCH_topk.json`` for the CI artifact) and under
pytest.
"""

import json
import random
import time
from pathlib import Path

from repro.core import MatchOptions, MatchResult, find_matches
from repro.graphs import (
    GraphSnapshot,
    QueryGraph,
    TemporalConstraints,
    TemporalGraph,
    ensure_snapshot,
)

#: Dense synthetic graph: enough matches that exact counting grinds.
NUM_VERTICES = 80
OUT_DEGREE = 12
TIMES_PER_PAIR = 10
TIME_HORIZON = 10_000
GRAPH_SEED = 7

#: Three-edge A-B-A-B path under a linear chain of gap constraints.
GAP = 2_000

ALGORITHM = "tcsm-eve"

TOP_K = 10

PROBES = 128
ESTIMATE_SEED = 0

#: Floor pinned by the issue: sampling must beat exact counting by 10x.
MIN_ESTIMATE_SPEEDUP = 10.0

REPEATS = 2

OUT_PATH = Path("BENCH_topk.json")


def dense_graph(
    n: int = NUM_VERTICES,
    degree: int = OUT_DEGREE,
    times_per_pair: int = TIMES_PER_PAIR,
    seed: int = GRAPH_SEED,
) -> "GraphSnapshot":
    """A two-label random graph with many timestamps per vertex pair."""
    rng = random.Random(seed)
    labels = ["A" if i % 2 == 0 else "B" for i in range(n)]
    graph = TemporalGraph(labels)
    for u in range(n):
        targets = rng.sample([v for v in range(n) if v != u], degree)
        for v in targets:
            for _ in range(times_per_pair):
                graph.add_edge(u, v, rng.randrange(0, TIME_HORIZON))
    return ensure_snapshot(graph)


def _best_run(fn) -> tuple[float, "MatchResult"]:
    best_seconds = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        best_seconds = min(best_seconds, time.perf_counter() - started)
    assert result is not None
    return best_seconds, result


def measure() -> dict[str, object]:
    """Full / limit=1 / top-k / count / estimate runs, as one report."""
    graph = dense_graph()
    query = QueryGraph(["A", "B", "A", "B"], [(0, 1), (1, 2), (2, 3)])
    constraints = TemporalConstraints(
        [(0, 1, GAP), (1, 2, GAP)], num_edges=query.num_edges
    )

    def run(options: MatchOptions, **kwargs: object) -> "MatchResult":
        return find_matches(
            query,
            constraints,
            graph,
            algorithm=ALGORITHM,
            options=options,
            **kwargs,
        )

    count_seconds, count = _best_run(lambda: run(MatchOptions(mode="count")))
    full_seconds, full = _best_run(lambda: run(MatchOptions()))
    one_seconds, one = _best_run(lambda: run(MatchOptions(limit=1)))
    topk_seconds, topk = _best_run(
        lambda: run(MatchOptions(limit=TOP_K, order_by="earliest"))
    )
    estimate_seconds, estimate = _best_run(
        lambda: run(
            MatchOptions(mode="estimate"),
            probes=PROBES,
            seed=ESTIMATE_SEED,
        )
    )

    assert estimate.estimate is not None
    assert len(full.matches) == count.stats.matches
    exact = count.stats.matches
    relative_error = abs(estimate.estimate.count - exact) / max(1, exact)
    return {
        "algorithm": ALGORITHM,
        "temporal_edges": float(graph.num_temporal_edges),
        "matches_total": float(exact),
        "expanded_full": float(count.stats.timestamps_expanded),
        "expanded_limit1": float(one.stats.timestamps_expanded),
        "limit1_truncated": bool(one.truncated_by_limit),
        "topk_returned": float(len(topk.matches)),
        "topk_ordered": bool(topk.ordered),
        "seconds_full": full_seconds,
        "seconds_count": count_seconds,
        "seconds_limit1": one_seconds,
        "seconds_topk": topk_seconds,
        "seconds_estimate": estimate_seconds,
        "estimate_count": float(estimate.estimate.count),
        "estimate_ci_low": float(estimate.estimate.ci_low),
        "estimate_ci_high": float(estimate.estimate.ci_high),
        "estimate_probes": float(PROBES),
        "estimate_relative_error": relative_error,
        "estimate_speedup": count_seconds / max(1e-9, estimate_seconds),
    }


def check(report: dict[str, object]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    expanded_full = report["expanded_full"]
    expanded_limit1 = report["expanded_limit1"]
    assert isinstance(expanded_full, float)
    assert isinstance(expanded_limit1, float)
    if not expanded_limit1 < expanded_full:
        failures.append(
            f"limit=1 expanded {expanded_limit1:.0f} timestamps, not "
            f"strictly fewer than the full run's {expanded_full:.0f} — "
            "the sink's StopEnumeration is not reaching the DFS"
        )
    if not report["limit1_truncated"]:
        failures.append("limit=1 run did not tag truncated_by_limit")
    speedup = report["estimate_speedup"]
    assert isinstance(speedup, float)
    if speedup < MIN_ESTIMATE_SPEEDUP:
        failures.append(
            f"estimate speedup {speedup:.1f}x below the "
            f"{MIN_ESTIMATE_SPEEDUP:.0f}x floor over exact counting"
        )
    topk_returned = report["topk_returned"]
    assert isinstance(topk_returned, float)
    if int(topk_returned) != TOP_K or not report["topk_ordered"]:
        failures.append(
            f"top-k run returned {report['topk_returned']:.0f} matches "
            f"(ordered={report['topk_ordered']}), wanted {TOP_K} ordered"
        )
    seconds_topk = report["seconds_topk"]
    seconds_full = report["seconds_full"]
    assert isinstance(seconds_topk, float)
    assert isinstance(seconds_full, float)
    if seconds_topk > seconds_full:
        failures.append(
            f"top-k took {seconds_topk:.4f}s, slower than the full "
            f"enumeration's {seconds_full:.4f}s — the bounded heap's "
            "non-admitting path is allocating per match again"
        )
    return failures


def test_topk_early_exit_and_estimate_speedup() -> None:
    report = measure()
    assert check(report) == [], check(report)


def main() -> int:
    report = measure()
    print(f"algorithm:          {report['algorithm']}")
    print(f"temporal edges:     {report['temporal_edges']:.0f}")
    print(f"matches (exact):    {report['matches_total']:.0f}")
    print(
        f"expanded full/limit=1: {report['expanded_full']:.0f} / "
        f"{report['expanded_limit1']:.0f}"
    )
    print(
        f"seconds full/count/limit=1/topk: {report['seconds_full']:.4f} / "
        f"{report['seconds_count']:.4f} / "
        f"{report['seconds_limit1']:.4f} / {report['seconds_topk']:.4f}"
    )
    print(
        f"count vs estimate:  {report['seconds_count']:.4f}s vs "
        f"{report['seconds_estimate']:.4f}s "
        f"({report['estimate_speedup']:.1f}x)"
    )
    print(
        f"estimate:           ~{report['estimate_count']:.0f} "
        f"(95% CI [{report['estimate_ci_low']:.0f}, "
        f"{report['estimate_ci_high']:.0f}], "
        f"rel err {report['estimate_relative_error']:.1%})"
    )
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote report -> {OUT_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
