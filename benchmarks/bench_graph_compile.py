"""Builder-vs-snapshot data plane: memory footprint and end-to-end cost.

The CSR snapshot exists for two measurable reasons: the dict-of-dicts
builder pays ~100 bytes of object headers per ``(u, v)`` pair and ~36
bytes per timestamp, where the snapshot pays 8-byte machine integers;
and the flat sorted runs enumerate at least as fast as dict probes.
This benchmark pins both on the medium CollegeMsg stand-in:

* snapshot adjacency payload is >= 30% smaller than the builder's
  dict planes (it is ~84% smaller in practice);
* full enumeration on the snapshot backend is no slower than on the
  dict backend (compile time is reported separately — it is a one-off
  per ``(graph, version)``, amortised by the registry).

Runs standalone (``python benchmarks/bench_graph_compile.py``, exits
non-zero on regression) and under pytest.
"""

import sys
import time

from repro.core import count_matches
from repro.datasets import load_dataset, paper_constraints, paper_query
from repro.graphs import TemporalGraph, compile_snapshot

#: Medium synthetic dataset: ~700 vertices / ~7k temporal edges.
SCALE = 0.12
SEED = 1

#: Floor pinned by the issue; measured reduction is far above it.
MIN_MEMORY_REDUCTION = 0.30

#: Noise allowance for the runtime comparison (min-of-5 timings).
RUNTIME_TOLERANCE = 1.15

REPEATS = 5


def _deep_sizeof(obj: object, seen: set[int] | None = None) -> int:
    """Recursive ``sys.getsizeof`` over containers (id-deduplicated)."""
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += _deep_sizeof(key, seen) + _deep_sizeof(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            total += _deep_sizeof(value, seen)
    return total


def dict_plane_bytes(graph: TemporalGraph) -> int:
    """Deep footprint of the builder's two adjacency dict planes.

    Deliberate private access: this benchmark measures the storage
    representation itself, which no accessor exposes.
    """
    out_plane = graph._out  # reprolint: disable=R011
    in_plane = graph._in  # reprolint: disable=R011
    return _deep_sizeof(out_plane) + _deep_sizeof(in_plane)


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure(scale: float = SCALE, seed: int = SEED) -> dict[str, float]:
    """All benchmark measurements as a flat report dict."""
    graph = load_dataset("CM", scale=scale, seed=seed)
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)

    started = time.perf_counter()
    snapshot = compile_snapshot(graph)
    compile_seconds = time.perf_counter() - started

    builder_bytes = dict_plane_bytes(graph)
    snapshot_bytes = snapshot.nbytes

    def run_dict() -> None:
        count_matches(
            graph=graph,
            query=query,
            constraints=constraints,
            algorithm="tcsm-eve",
            compile_graph=False,
        )

    graph.freeze()  # amortised once, as the service registry does

    def run_snapshot() -> None:
        count_matches(
            graph=graph,
            query=query,
            constraints=constraints,
            algorithm="tcsm-eve",
        )

    return {
        "temporal_edges": float(graph.num_temporal_edges),
        "builder_bytes": float(builder_bytes),
        "snapshot_bytes": float(snapshot_bytes),
        "memory_reduction": 1.0 - snapshot_bytes / builder_bytes,
        "compile_seconds": compile_seconds,
        "dict_seconds": _best_of(run_dict),
        "snapshot_seconds": _best_of(run_snapshot),
    }


def check(report: dict[str, float]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    if report["memory_reduction"] < MIN_MEMORY_REDUCTION:
        failures.append(
            f"memory reduction {report['memory_reduction']:.1%} below the "
            f"{MIN_MEMORY_REDUCTION:.0%} floor"
        )
    bound = report["dict_seconds"] * RUNTIME_TOLERANCE
    if report["snapshot_seconds"] > bound:
        failures.append(
            f"snapshot enumeration {report['snapshot_seconds']:.4f}s slower "
            f"than dict backend bound {bound:.4f}s"
        )
    return failures


def test_snapshot_memory_and_runtime() -> None:
    report = measure()
    assert check(report) == [], check(report)


def main() -> int:
    report = measure()
    print(f"temporal edges:    {report['temporal_edges']:.0f}")
    print(f"builder planes:    {report['builder_bytes']:.0f} bytes")
    print(f"snapshot planes:   {report['snapshot_bytes']:.0f} bytes")
    print(f"memory reduction:  {report['memory_reduction']:.1%}")
    print(f"compile (one-off): {report['compile_seconds'] * 1e3:.1f} ms")
    print(f"enumerate dict:    {report['dict_seconds'] * 1e3:.1f} ms")
    print(f"enumerate snap:    {report['snapshot_seconds'] * 1e3:.1f} ms")
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
