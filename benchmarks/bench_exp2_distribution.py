"""Exp-2 bench (Fig. 14 / Table VI): TCQ(+) construction vs matching.

Benchmarks the two phases separately for each TCSM algorithm.  Expected
shape: TCQ+ construction (e2e/eve) costs more than TCQ (v2v), while their
matching phases cost less — construction effort buys pruning.
"""

import pytest

from repro.core import create_matcher

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_build_phase(benchmark, cm_graph, workload, algorithm):
    query, constraints = workload

    def build():
        matcher = create_matcher(algorithm, query, constraints, cm_graph)
        matcher.prepare()
        return matcher

    benchmark(build)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_match_phase(benchmark, cm_graph, workload, algorithm):
    query, constraints = workload
    matcher = create_matcher(algorithm, query, constraints, cm_graph)
    matcher.prepare()  # build once, outside the timed region

    def match():
        return sum(1 for _ in matcher.run())

    count = benchmark(match)
    benchmark.extra_info["matches"] = count
