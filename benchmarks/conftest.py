"""Shared fixtures for the benchmark suite.

Benchmarks mirror the experiment drivers (one file per paper table or
figure, see DESIGN.md §4) at reduced scale so ``pytest benchmarks/
--benchmark-only`` completes in minutes.  The full-scale numbers come from
``python -m repro.experiments.exp_*``; EXPERIMENTS.md records those.
"""

import pytest

from repro.datasets import load_dataset, paper_constraints, paper_query

BENCH_SCALE = 0.02
BENCH_SEED = 1


@pytest.fixture(scope="session")
def cm_graph():
    """A small CollegeMsg stand-in (dense; ~1.4k temporal edges)."""
    return load_dataset("CM", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def ub_graph():
    """A small sx-askubuntu stand-in (sparse)."""
    return load_dataset("UB", scale=0.004, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def workload():
    """The paper's default workload: (q1, tc2)."""
    query = paper_query(1)
    constraints = paper_constraints(2, num_edges=query.num_edges)
    return query, constraints
