"""Exp-4 bench (Fig. 17): runtime versus query density |E_q|/|V_q|.

Expected shape: E2E/EVE do best around density 1-1.5; V2V relies on a
richer structure (FV pruning) and dislikes density near 1.
"""

import pytest

from repro.core import count_matches
from repro.datasets import random_constraints, random_query

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve")
LABELS = ("A", "B", "C", "D")


@pytest.mark.parametrize("density", (1.0, 1.5, 2.0, 3.0))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_density(benchmark, cm_graph, algorithm, density):
    num_vertices = 5
    num_edges = max(num_vertices - 1, round(density * num_vertices))
    query = random_query(num_vertices, num_edges, LABELS, seed=3)
    constraints = random_constraints(query, 3, 7 * 86_400, seed=3)
    count = benchmark(
        count_matches,
        query,
        constraints,
        cm_graph,
        algorithm=algorithm,
        time_budget=20.0,
    )
    benchmark.extra_info["matches"] = count
