"""Exp-6 bench (Table IV): working-set memory of the algorithms.

pytest-benchmark measures time; the peak-allocation numbers (the actual
Table IV content) are attached as ``extra_info`` so ``--benchmark-json``
exports them.  Expected shape: sj-tree's materialised partials dwarf
everything; tcsm-v2v is the lightest of the TCSM family.
"""

import tracemalloc

import pytest

from repro.core import MatchOptions, count_matches

ALGORITHMS = ("tcsm-v2v", "tcsm-e2e", "tcsm-eve", "ri-ds", "graphflow")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_memory(benchmark, ub_graph, workload, algorithm):
    query, constraints = workload

    def tracked_run():
        tracemalloc.start()
        count_matches(
            query, constraints, ub_graph,
            algorithm=algorithm, options=MatchOptions(time_budget=10.0),
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    peak = benchmark.pedantic(tracked_run, rounds=2, iterations=1)
    benchmark.extra_info["peak_mb"] = round(peak / (1024 * 1024), 3)


def test_memory_sjtree(benchmark, ub_graph, workload):
    query, constraints = workload

    def tracked_run():
        tracemalloc.start()
        count_matches(
            query, constraints, ub_graph,
            algorithm="sj-tree", options=MatchOptions(time_budget=5.0),
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    peak = benchmark.pedantic(tracked_run, rounds=1, iterations=1)
    benchmark.extra_info["peak_mb"] = round(peak / (1024 * 1024), 3)
