"""Streaming ingest throughput and the amortised-append advantage.

Two claims back the streaming subsystem, both measured here:

* **Sustained ingest.** A shuffled synthetic edge stream is fed through
  a ``StreamingEngine`` carrying several standing subscriptions; the
  report records sustained edges/second (append + delta search +
  delivery) and the append-to-emission latency percentiles over every
  emitted match.
* **Amortised appends.** Appending the same stream through
  ``SegmentedGraph`` must beat the naive alternative — recompiling a
  full CSR snapshot after every edge (the exact pathology reprolint
  R017 flags) — by at least :data:`MIN_APPEND_ADVANTAGE` on amortised
  per-edge wall-clock, with proportionally fewer snapshot compilations
  (``snapshot_compile_count``).  The baseline only replays a prefix of
  the stream (per-edge recompilation is quadratic, which is the point);
  its graphs are therefore *smaller* than the segmented run's, so the
  measured advantage is a conservative floor.

Runs standalone (``python benchmarks/bench_streaming.py``, exits
non-zero on regression, writes ``BENCH_streaming.json`` for the CI
perf-trajectory artifact) and under pytest.
"""

import json
import random
import time
from pathlib import Path

from repro.datasets import random_instance
from repro.graphs import SegmentedGraph, TemporalGraph, compile_snapshot
from repro.graphs import snapshot_compile_count
from repro.streaming import StreamingEngine

SEED = 7

#: Standing subscriptions held while the stream is ingested.
N_SUBSCRIPTIONS = 4

#: Random-instance shape: denser than the library defaults (which yield
#: zero-match instances) so the subscriptions actually emit.
INSTANCE = dict(
    query_vertices=3,
    query_edges=3,
    num_constraints=2,
    max_gap=25,
    data_vertices=30,
    data_edges=2500,
    num_labels=3,
    max_time=400,
)

#: Edges per ingest request (the CLI's ``repro ingest --batch`` shape).
BATCH = 64

#: Stream prefix replayed through the recompile-per-edge baseline.
BASELINE_EDGES = 400

#: Floor for amortised per-edge append advantage over full recompiles.
MIN_APPEND_ADVANTAGE = 10.0

OUT_PATH = Path("BENCH_streaming.json")


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (values need not be sorted)."""
    ranked = sorted(values)
    index = min(len(ranked) - 1, round(q * (len(ranked) - 1)))
    return ranked[index]


def _stream(seed: int) -> tuple[list[tuple[int, int, int]], TemporalGraph]:
    """The shuffled edge stream and its source graph."""
    _, _, source = random_instance(seed=seed, **INSTANCE)
    stream = list(source.edges())
    random.Random(seed + 1).shuffle(stream)
    return stream, source


def measure(seed: int = SEED) -> dict[str, float]:
    """All benchmark measurements as a flat report dict."""
    stream, source = _stream(seed)

    # -- sustained ingest with standing subscriptions -------------------
    engine = StreamingEngine(
        SegmentedGraph(source.labels, merge_threshold=256, max_segments=8)
    )
    for i in range(N_SUBSCRIPTIONS):
        # Distinct patterns over the shared label alphabet.
        query, constraints, _ = random_instance(seed=seed + i, **INSTANCE)
        engine.subscribe(query, constraints, sub_id=f"s{i}")
    started = time.perf_counter()
    for lo in range(0, len(stream), BATCH):
        engine.ingest(stream[lo : lo + BATCH])
    ingest_seconds = time.perf_counter() - started
    latencies = [
        emission.latency_seconds
        for i in range(N_SUBSCRIPTIONS)
        for emission in engine.poll(f"s{i}")
    ]

    # -- amortised append: segmented vs recompile-per-edge --------------
    segmented = SegmentedGraph(
        source.labels, merge_threshold=256, max_segments=8
    )
    compile_floor = snapshot_compile_count()
    started = time.perf_counter()
    for u, v, t in stream:
        segmented.append(u, v, t)
    segmented_seconds = time.perf_counter() - started
    segmented_compiles = snapshot_compile_count() - compile_floor

    baseline = TemporalGraph(source.labels)
    compile_floor = snapshot_compile_count()
    started = time.perf_counter()
    for u, v, t in stream[:BASELINE_EDGES]:
        baseline.add_edge(u, v, t)
        compile_snapshot(baseline)  # reprolint: disable=R017 -- measuring the recompile-per-edge baseline
    baseline_seconds = time.perf_counter() - started
    baseline_compiles = snapshot_compile_count() - compile_floor

    segmented_per_edge = segmented_seconds / len(stream)
    baseline_per_edge = baseline_seconds / BASELINE_EDGES
    return {
        "edges": float(len(stream)),
        "subscriptions": float(N_SUBSCRIPTIONS),
        "ingest_seconds": ingest_seconds,
        "edges_per_second": len(stream) / ingest_seconds,
        "emissions": float(len(latencies)),
        "latency_p50_seconds": _percentile(latencies, 0.50),
        "latency_p95_seconds": _percentile(latencies, 0.95),
        "latency_p99_seconds": _percentile(latencies, 0.99),
        "segmented_per_edge_seconds": segmented_per_edge,
        "baseline_per_edge_seconds": baseline_per_edge,
        "segmented_compiles": float(segmented_compiles),
        "baseline_compiles": float(baseline_compiles),
        "append_advantage": baseline_per_edge / segmented_per_edge,
    }


def check(report: dict[str, float]) -> list[str]:
    """Regression messages (empty when the report meets the bars)."""
    failures: list[str] = []
    if report["emissions"] < 1:
        failures.append(
            "no emissions: the standing subscriptions never matched"
        )
    if report["append_advantage"] < MIN_APPEND_ADVANTAGE:
        failures.append(
            f"amortised append advantage {report['append_advantage']:.1f}x "
            f"below the {MIN_APPEND_ADVANTAGE:.0f}x floor"
        )
    if (
        report["segmented_compiles"] * MIN_APPEND_ADVANTAGE
        > report["baseline_compiles"]
    ):
        failures.append(
            f"segmented appends compiled {report['segmented_compiles']:.0f} "
            f"snapshots for {report['edges']:.0f} edges — not amortised "
            f"(baseline: {report['baseline_compiles']:.0f} for "
            f"{BASELINE_EDGES} edges)"
        )
    return failures


def test_streaming_throughput_and_amortised_appends() -> None:
    report = measure()
    assert check(report) == [], check(report)


def main() -> int:
    report = measure()
    print(f"edges streamed:     {report['edges']:.0f}")
    print(f"subscriptions:      {report['subscriptions']:.0f}")
    print(f"sustained ingest:   {report['edges_per_second']:.0f} edges/s")
    print(f"emissions:          {report['emissions']:.0f}")
    print(f"latency p50:        {report['latency_p50_seconds'] * 1e3:.2f} ms")
    print(f"latency p95:        {report['latency_p95_seconds'] * 1e3:.2f} ms")
    print(f"latency p99:        {report['latency_p99_seconds'] * 1e3:.2f} ms")
    print(
        f"append (segmented): {report['segmented_per_edge_seconds'] * 1e6:.1f}"
        f" us/edge ({report['segmented_compiles']:.0f} compiles)"
    )
    print(
        f"append (recompile): {report['baseline_per_edge_seconds'] * 1e6:.1f}"
        f" us/edge ({report['baseline_compiles']:.0f} compiles)"
    )
    print(f"append advantage:   {report['append_advantage']:.1f}x")
    failures = check(report)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
